"""Tests for the standard-cell library, Boolean matcher and ASIC mapper."""

import pytest

from repro.circuits import build
from repro.core import MchParams, build_mch
from repro.mapping import (
    MatchTable,
    asap7_library,
    asic_map,
    parse_genlib,
    write_genlib,
)
from repro.mapping.library import parse_expression
from repro.networks import Aig, Xag, Xmg
from repro.sat import cec
from repro.truth.truth_table import TruthTable


class TestLibrary:
    def test_asap7_has_inverter_and_core_cells(self):
        lib = asap7_library()
        assert lib.inverter is not None
        names = {c.name for c in lib}
        for need in ("INVx1", "NAND2x1", "XOR2x1", "MAJx2", "O21BAIx1"):
            assert need in names

    def test_cell_functions(self):
        lib = asap7_library()
        nand2 = lib.cell("NAND2x1")
        assert nand2.function == ~(TruthTable.var(2, 0) & TruthTable.var(2, 1))
        maj = lib.cell("MAJx2")
        expect = TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2)
        assert maj.function == expect

    def test_expression_parser(self):
        tt, pins = parse_expression("!((A*B)+C)")
        assert pins == ["A", "B", "C"]
        expect = TruthTable.from_function(3, lambda a, b, c: not ((a and b) or c))
        assert tt == expect

    def test_expression_parser_xor_prime(self):
        tt, pins = parse_expression("A^B'")
        expect = TruthTable.from_function(2, lambda a, b: a != (not b))
        assert tt == expect

    def test_genlib_roundtrip(self):
        lib = asap7_library()
        text = write_genlib(lib)
        lib2 = parse_genlib(text, name="roundtrip")
        assert len(lib2) == len(lib)
        for cell in lib:
            c2 = lib2.cell(cell.name)
            assert c2.function == cell.function
            assert c2.area == pytest.approx(cell.area)
            assert c2.pin_delays == pytest.approx(cell.pin_delays)

    def test_genlib_parse_basic(self):
        text = """
        GATE inv 1.0 O=!A; PIN * INV 1 999 1.0 0.0 1.0 0.0
        GATE nand2 2.0 O=!(A*B); PIN * INV 1 999 1.5 0.0 1.5 0.0
        """
        lib = parse_genlib(text)
        assert len(lib) == 2
        assert lib.inverter.name == "inv"


class TestMatcher:
    def test_and2_matches(self):
        table = MatchTable(asap7_library())
        tt = TruthTable.from_function(2, lambda a, b: a and b)
        matches = table.lookup(tt)
        assert any(m.cell.name == "AND2x2" for m in matches)

    def test_nand_with_phases(self):
        table = MatchTable(asap7_library())
        # !a AND b should match NOR2 with one complemented pin, etc.
        tt = TruthTable.from_function(2, lambda a, b: (not a) and b)
        matches = table.lookup(tt)
        assert matches
        # verify one match semantically
        m = matches[0]
        cell_tt = m.cell.function
        for x in range(4):
            leaf_vals = [bool((x >> i) & 1) for i in range(2)]
            pin_vals = []
            for pin in range(m.cell.num_pins):
                v = leaf_vals[m.leaf_of_pin[pin]] ^ m.pin_phases[pin]
                pin_vals.append(v)
            assert cell_tt.evaluate(pin_vals) == tt.evaluate(leaf_vals)

    def test_all_matches_semantically_correct(self):
        table = MatchTable(asap7_library())
        for tt in [
            TruthTable.from_hex(3, "e8"),
            TruthTable.from_hex(3, "96"),
            TruthTable.from_function(3, lambda a, b, c: not ((a or b) and (not c))),
        ]:
            for m in table.lookup(tt):
                for x in range(1 << tt.num_vars):
                    leaf_vals = [bool((x >> i) & 1) for i in range(tt.num_vars)]
                    pin_vals = [
                        leaf_vals[m.leaf_of_pin[p]] ^ m.pin_phases[p]
                        for p in range(m.cell.num_pins)
                    ]
                    assert m.cell.function.evaluate(pin_vals) == tt.evaluate(leaf_vals)

    def test_no_match_for_exotic(self):
        table = MatchTable(asap7_library())
        # a 4-input prime function unlikely to be a single cell
        tt = TruthTable.from_hex(4, "16e9")
        for m in table.lookup(tt):
            assert m.cell.num_pins == 4  # if matched at all, must be 4-pin


class TestAsicMapper:
    @pytest.mark.parametrize("objective", ["delay", "area"])
    def test_equivalence(self, objective):
        ntk = build("adder", "tiny")
        nl = asic_map(ntk, objective=objective)
        assert cec(ntk, nl.to_logic_network(Aig))
        assert nl.area() > 0 and nl.delay() > 0

    def test_delay_map_faster_than_area_map(self):
        ntk = build("max", "tiny")
        d = asic_map(ntk, objective="delay")
        a = asic_map(ntk, objective="area")
        assert d.delay() <= a.delay()
        assert a.area() <= d.area()

    def test_po_polarity(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        g = ntk.create_and(a, b)
        ntk.create_po(g ^ 1)  # complemented PO
        nl = asic_map(ntk)
        assert nl.simulate([True, True]) == [False]
        assert nl.simulate([True, False]) == [True]

    def test_po_on_pi_and_const(self):
        ntk = Aig()
        a = ntk.create_pi()
        ntk.create_po(a ^ 1)
        ntk.create_po(ntk.const1)
        nl = asic_map(ntk)
        assert nl.simulate([False]) == [True, True]
        assert nl.simulate([True]) == [False, True]

    def test_mch_improves_delay_on_adder(self):
        ntk = build("adder", "tiny")
        plain = asic_map(ntk, objective="delay")
        ch = build_mch(ntk, MchParams(representations=(Xmg, Xag), ratio=0.8))
        mch = asic_map(ch, objective="delay")
        assert mch.delay() <= plain.delay()
        assert cec(ntk, mch.to_logic_network(Aig))

    def test_mixed_network_subject(self):
        # mapping an XMG directly (MAJ/XOR3 gates) must work via MAJ cells
        ntk = Xmg()
        a, b, c = (ntk.create_pi() for _ in range(3))
        ntk.create_po(ntk.create_maj(a, b, c))
        ntk.create_po(ntk.create_xor3(a, b, c))
        nl = asic_map(ntk)
        assert cec(ntk, nl.to_logic_network(Aig))
        assert any(name.startswith(("MAJ", "XOR3", "XNOR3")) for name in nl.cell_histogram())

    def test_histogram_and_verilog(self):
        from repro.io import write_verilog_netlist

        ntk = build("ctrl", "tiny")
        nl = asic_map(ntk, objective="area")
        hist = nl.cell_histogram()
        assert sum(hist.values()) == nl.num_cells()
        v = write_verilog_netlist(nl)
        assert v.startswith("module top") and v.rstrip().endswith("endmodule")
