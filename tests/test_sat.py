"""Tests for the CDCL solver, CNF encoding and CEC."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import Aig, Mig, MixedNetwork, Xmg, convert
from repro.networks.base import lit_not
from repro.sat import SAT, UNSAT, CnfBuilder, Solver, cec


def brute_force(clauses, num_vars):
    for bits in range(1 << num_vars):
        assign = [(bits >> i) & 1 for i in range(num_vars)]
        ok = True
        for cl in clauses:
            if not any(assign[abs(l) - 1] == (1 if l > 0 else 0) for l in cl):
                ok = False
                break
        if ok:
            return True
    return False


class TestSolverBasics:
    def test_empty_problem_sat(self):
        s = Solver()
        assert s.solve() == SAT

    def test_unit_clauses(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-2])
        assert s.solve() == SAT
        assert s.model_value(1) is True
        assert s.model_value(2) is False

    def test_contradiction(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() == UNSAT

    def test_simple_unsat(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, 2])
        s.add_clause([-1, -2])
        assert s.solve() == UNSAT

    def test_pigeonhole_3_2(self):
        # 3 pigeons, 2 holes: var p_ij = pigeon i in hole j
        s = Solver()
        v = {}
        k = 0
        for i in range(3):
            for j in range(2):
                k += 1
                v[i, j] = k
                s.new_var()
        for i in range(3):
            s.add_clause([v[i, 0], v[i, 1]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-v[i1, j], -v[i2, j]])
        assert s.solve() == UNSAT

    def test_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1]) == SAT
        assert s.solve(assumptions=[-1, -2]) == UNSAT
        assert s.solve() == SAT  # solver still usable

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 8)
        num_clauses = rng.randint(1, 24)
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, 3)
            cl = []
            for _ in range(width):
                v = rng.randint(1, num_vars)
                cl.append(v if rng.random() < 0.5 else -v)
            clauses.append(cl)
        s = Solver()
        ok = True
        for cl in clauses:
            if not s.add_clause(cl):
                ok = False
                break
        got = UNSAT if not ok else s.solve()
        assert got == brute_force(clauses, num_vars)

    def test_model_satisfies_clauses(self):
        rng = random.Random(7)
        for _ in range(20):
            num_vars = rng.randint(2, 10)
            clauses = []
            s = Solver()
            consistent = True
            for _ in range(rng.randint(2, 30)):
                cl = [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
                clauses.append(cl)
                if not s.add_clause(cl):
                    consistent = False
                    break
            if not consistent:
                continue
            if s.solve() == SAT:
                for cl in clauses:
                    assert any(
                        s.model_value(abs(l)) == (l > 0) for l in cl
                    ), f"model violates {cl}"


class TestCnfEncoding:
    def test_gate_semantics_by_enumeration(self):
        ntk = MixedNetwork()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        ntk.create_po(ntk.create_and(a, b))
        ntk.create_po(ntk.create_xor(a, b))
        ntk.create_po(ntk.create_maj(a, b, c))
        ntk.create_po(ntk.create_xor3(a, b, c))
        builder = CnfBuilder()
        pi_vars = {i: builder.new_var() for i in range(3)}
        _, po_lits = builder.encode(ntk, pi_vars)
        # for every assignment the CNF must force PO values = simulation
        for bits in itertools.product([False, True], repeat=3):
            s = Solver()
            for _ in range(builder.num_vars):
                s.new_var()
            for cl in builder.clauses:
                assert s.add_clause(cl)
            assumptions = [
                (pi_vars[i] if bits[i] else -pi_vars[i]) for i in range(3)
            ]
            assert s.solve(assumptions=assumptions) == SAT
            expect = ntk.simulate(list(bits))
            got = [s.model_value(abs(l)) ^ (l < 0) for l in po_lits]
            assert got == expect


class TestCec:
    def test_equivalent_conversions(self):
        ntk = MixedNetwork()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        ntk.create_po(ntk.create_maj(a, b, c))
        ntk.create_po(ntk.create_xor3(a, b, c))
        for cls in (Aig, Mig, Xmg):
            other = convert(ntk, cls)
            assert cec(ntk, other)

    def test_detects_inequivalence(self):
        n1 = Aig()
        a = n1.create_pi()
        b = n1.create_pi()
        n1.create_po(n1.create_and(a, b))
        n2 = Aig()
        a = n2.create_pi()
        b = n2.create_pi()
        n2.create_po(n2.create_or(a, b))
        res = cec(n1, n2)
        assert not res
        # counterexample must actually distinguish them
        cex = res.counterexample
        assert n1.simulate(cex) != n2.simulate(cex)

    def test_sat_path_on_wide_network(self):
        # > sim_limit PIs forces the SAT miter path
        n1 = Aig()
        n2 = Aig()
        lits1 = [n1.create_pi() for _ in range(14)]
        lits2 = [n2.create_pi() for _ in range(14)]
        x1 = n1.create_nary_and(lits1, balanced=True)
        x2 = n2.create_nary_and(lits2, balanced=False)
        n1.create_po(x1)
        n2.create_po(x2)
        assert cec(n1, n2, sim_limit=4)

    def test_sat_path_detects_bug(self):
        n1 = Aig()
        n2 = Aig()
        lits1 = [n1.create_pi() for _ in range(14)]
        lits2 = [n2.create_pi() for _ in range(14)]
        n1.create_po(n1.create_nary_and(lits1))
        bad = lits2[:]
        bad[3] = lit_not(bad[3])
        n2.create_po(n2.create_nary_and(bad))
        res = cec(n1, n2, sim_limit=4)
        assert not res
        assert n1.simulate(res.counterexample) != n2.simulate(res.counterexample)
