"""Tests for the deeper resyn2rs flow and switching-power estimation."""

import pytest

from repro.circuits import build
from repro.mapping import asic_map
from repro.opt import compress2rs, optimize_rounds, resyn2rs
from repro.sat import cec


class TestResyn2rs:
    @pytest.mark.parametrize("name", ["ctrl", "int2float"])
    def test_equivalence_and_gain(self, name):
        ntk = build(name, "tiny")
        out = resyn2rs(ntk, rounds=2)
        assert cec(ntk, out)
        assert out.num_gates() <= ntk.num_gates()

    def test_not_worse_than_compress2rs_much(self):
        ntk = build("cavlc", "tiny")
        deep = resyn2rs(ntk, rounds=2)
        quick = compress2rs(ntk, rounds=2)
        # the deeper flow should at least be competitive
        assert deep.num_gates() <= quick.num_gates() * 1.1

    def test_optimize_rounds_resyn_script(self):
        ntk = build("router", "tiny")
        snaps = optimize_rounds(ntk, script="resyn2rs", rounds=1)
        assert len(snaps) == 2
        assert cec(ntk, snaps[1])


class TestSwitchingPower:
    def test_positive_and_deterministic(self):
        ntk = build("int2float", "tiny")
        nl = asic_map(ntk, objective="area")
        p1 = nl.switching_power()
        p2 = nl.switching_power()
        assert p1 > 0 and p1 == pytest.approx(p2)

    def test_scales_with_area(self):
        # a bigger mapping of the same function should not consume less
        # power under the same stimulus distribution (area-weighted toggles)
        ntk = build("multiplier", "tiny")
        small = asic_map(ntk, objective="area")
        big = asic_map(ntk, objective="delay")
        if big.area() > small.area() * 1.2:
            assert big.switching_power() > small.switching_power() * 0.8

    def test_constant_netlist_zero_power(self):
        from repro.networks import Aig

        ntk = Aig()
        ntk.create_pi()
        ntk.create_po(ntk.const1)
        nl = asic_map(ntk)
        assert nl.switching_power() == 0.0
