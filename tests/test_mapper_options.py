"""Focused tests for mapper parameters and edge behaviours."""

import pytest

from repro.circuits import build
from repro.core import MchParams, build_mch
from repro.cuts import enumerate_cuts
from repro.mapping import CutMapper, asic_map, lut_map
from repro.networks import Aig, Xmg
from repro.sat import cec


class TestLutMapperOptions:
    def test_cut_limit_tradeoff(self):
        ntk = build("max", "tiny")
        small = lut_map(ntk, k=6, cut_limit=2, objective="area")
        large = lut_map(ntk, k=6, cut_limit=12, objective="area")
        # more cuts can only help the heuristic on average; both must verify
        assert cec(ntk, small.to_logic_network(Aig))
        assert cec(ntk, large.to_logic_network(Aig))
        assert large.num_luts() <= small.num_luts() * 1.2

    def test_flow_iterations_zero(self):
        ntk = build("ctrl", "tiny")
        lut = lut_map(ntk, flow_iterations=0, exact_iterations=0, objective="delay")
        assert cec(ntk, lut.to_logic_network(Aig))

    def test_exact_iterations_reduce_or_keep_area(self):
        ntk = build("multiplier", "tiny")
        no_exact = lut_map(ntk, k=5, exact_iterations=0, objective="area")
        with_exact = lut_map(ntk, k=5, exact_iterations=3, objective="area")
        assert with_exact.num_luts() <= no_exact.num_luts()

    def test_mapping_cover_consistency(self):
        ntk = build("int2float", "tiny")
        cover = CutMapper(ntk, k=5, objective="area").run()
        # every selected cut's leaves must be covered or be PIs
        for node, cut in cover.selection.items():
            for leaf in cut.leaves:
                assert ntk.is_pi(leaf) or leaf in cover.selection
        assert cover.area == pytest.approx(len(cover.selection))

    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            CutMapper(build("ctrl", "tiny"), objective="balanced")


class TestAsicMapperOptions:
    def test_flow_iterations_effect(self):
        ntk = build("max", "tiny")
        raw = asic_map(ntk, objective="delay", flow_iterations=0, exact_iterations=0)
        recovered = asic_map(ntk, objective="delay", flow_iterations=2, exact_iterations=2)
        assert recovered.area() <= raw.area() * 1.01
        assert cec(ntk, recovered.to_logic_network(Aig))

    def test_exact_iterations_never_hurt_area(self):
        ntk = build("cavlc", "tiny")
        no_exact = asic_map(ntk, objective="area", exact_iterations=0)
        with_exact = asic_map(ntk, objective="area", exact_iterations=2)
        assert with_exact.area() <= no_exact.area() + 1e-9

    def test_delay_map_respects_required_times(self):
        # area recovery must not degrade the achieved delay
        ntk = build("priority", "tiny")
        fast = asic_map(ntk, objective="delay", flow_iterations=0, exact_iterations=0)
        tuned = asic_map(ntk, objective="delay", flow_iterations=2, exact_iterations=2)
        assert tuned.delay() <= fast.delay() + 1e-9

    def test_cut_limit_param(self):
        ntk = build("router", "tiny")
        nl = asic_map(ntk, cut_limit=4)
        assert cec(ntk, nl.to_logic_network(Aig))


class TestChoiceCutsDetails:
    def test_merged_sets_respect_budget(self):
        ntk = build("adder", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        l = 6
        cuts = enumerate_cuts(ch.ntk, k=4, cut_limit=l,
                              order=ch.processing_order(), choices=ch.choices_of)
        for rep in ch.choices_of:
            # own budget + choice budget + trivial
            assert len(cuts[rep]) <= 2 * l

    def test_plain_enumeration_unchanged_by_choice_arg_none(self):
        ntk = build("ctrl", "tiny")
        a = enumerate_cuts(ntk, k=4, cut_limit=8)
        b = enumerate_cuts(ntk, k=4, cut_limit=8, order=list(range(ntk.num_nodes())))
        for x, y in zip(a, b):
            assert [c.leaves for c in x] == [c.leaves for c in y]
