"""End-to-end fuzzing: random networks through the full MCH pipeline.

Every random network is pushed through optimization, choice construction
and all three mappers, and each stage is CEC-verified against the original.
This is the failure-injection net that catches interactions no unit test
exercises.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MchParams, build_mch
from repro.mapping import asic_map, graph_map, lut_map
from repro.networks import Aig, MixedNetwork, Mig, Xag, Xmg
from repro.opt import balance, compress2rs, refactor, resub, sweep
from repro.sat import cec


def random_network(seed: int, cls=Aig, n_pis: int = 6, n_gates: int = 40):
    rng = random.Random(seed)
    ntk = cls()
    lits = [ntk.create_pi() for _ in range(n_pis)]
    ops = ["and", "or", "xor", "maj", "mux"]
    for _ in range(n_gates):
        op = rng.choice(ops)
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        c = rng.choice(lits) ^ rng.randint(0, 1)
        if op == "and":
            lits.append(ntk.create_and(a, b))
        elif op == "or":
            lits.append(ntk.create_or(a, b))
        elif op == "xor":
            lits.append(ntk.create_xor(a, b))
        elif op == "maj":
            lits.append(ntk.create_maj(a, b, c))
        else:
            lits.append(ntk.create_mux(a, b, c))
    for _ in range(3):
        ntk.create_po(rng.choice(lits) ^ rng.randint(0, 1))
    return ntk


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=8, deadline=None)
def test_full_pipeline_aig(seed):
    ntk = random_network(seed, Aig)
    opt = compress2rs(ntk, rounds=1)
    assert cec(ntk, opt), "compress2rs broke equivalence"
    mch = build_mch(opt, MchParams(representations=(Xmg,)))
    assert mch.verify(), "choice network corrupt"
    lut = lut_map(mch, k=5, objective="area")
    assert cec(ntk, lut.to_logic_network(Aig)), "LUT mapping broke equivalence"
    nl = asic_map(mch, objective="delay")
    assert cec(ntk, nl.to_logic_network(Aig)), "ASIC mapping broke equivalence"


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=6, deadline=None)
def test_full_pipeline_mixed_source(seed):
    ntk = random_network(seed, MixedNetwork)
    for target in (Aig, Mig, Xmg):
        out = graph_map(ntk, target, objective="area")
        assert cec(ntk, out), f"graph map to {target.__name__} broke equivalence"


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=6, deadline=None)
def test_optimization_pass_stack(seed):
    ntk = random_network(seed, Aig)
    for pass_fn in (balance, sweep, refactor, resub):
        out = pass_fn(ntk)
        assert cec(ntk, out), f"{pass_fn.__name__} broke equivalence"
        ntk = out  # chain the passes


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_choice_heavy_configurations(seed):
    ntk = random_network(seed, Aig, n_pis=5, n_gates=25)
    mch = build_mch(ntk, MchParams(
        representations=(Xag, Mig, Xmg), ratio=0.5,
        max_cuts_per_node=4, cut_size=5,
    ))
    assert mch.verify()
    lut = lut_map(mch, k=4, objective="delay")
    assert cec(ntk, lut.to_logic_network(Aig))
