"""Execute every Python code block in README.md, in order, verbatim.

The quickstart is the first thing a user runs; this test keeps it honest.
Blocks share one namespace (later blocks may use names bound by earlier
ones, exactly as a reader following along would have them) and run inside
a temporary working directory so examples that write files (the result
store) stay hermetic.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    return _BLOCK.findall(README.read_text())


def test_readme_has_executable_examples():
    blocks = _python_blocks()
    assert len(blocks) >= 4, "README lost its Python quickstart blocks"


def test_readme_python_blocks_run(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)          # examples may write result stores
    namespace = {}
    for i, block in enumerate(_python_blocks(), 1):
        try:
            exec(compile(block, f"README.md[python block {i}]", "exec"),
                 namespace)
        except Exception as exc:         # pragma: no cover - failure reporting
            pytest.fail(f"README python block {i} failed: "
                        f"{type(exc).__name__}: {exc}\n---\n{block}")
    # the quickstart's verified flow and the batch comparison both printed
    out = capsys.readouterr().out
    assert "gates" in out or "LUTs" in out
    assert "zero regressions" in out
