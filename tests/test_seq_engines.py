"""Sequential engines: unrolling, simulation, BMC, induction, sweep, retime."""

import pytest

from repro.circuits import build
from repro.networks import Aig
from repro.sat import cec
from repro.seq import (
    bmc_cec,
    k_induction_cec,
    register_sweep,
    retime_forward,
    seq_cec,
    simulate_sequential,
    unroll,
)


def counter(width=3, init=0):
    ntk = Aig()
    en = ntk.create_pi("en")
    state = [ntk.create_ro(f"c{i}", init=(init >> i) & 1) for i in range(width)]
    carry = en
    nexts = []
    for s in state:
        nexts.append(ntk.create_xor(s, carry))
        carry = ntk.create_and(s, carry)
    for i, nx in enumerate(nexts):
        ntk.create_po(nx, f"q{i}")
    for nx in nexts:
        ntk.create_ri(nx)
    return ntk


def decode(word_per_po, bit):
    """Trace ``bit`` of packed PO words -> integer value per frame."""
    return sum(((w >> bit) & 1) << i for i, w in enumerate(word_per_po))


def registered_and_layer(width=4):
    """Per-bit AND of two registered operand words — every operand register
    feeds exactly one gate, so forward retiming can collapse each pair.
    (XOR would not do: an AIG decomposes it into ANDs that share fanins.)"""
    ntk = Aig()
    a = [ntk.create_pi(f"a{i}") for i in range(width)]
    b = [ntk.create_pi(f"b{i}") for i in range(width)]
    ra = [ntk.create_ro(f"ra{i}", init=0) for i in range(width)]
    rb = [ntk.create_ro(f"rb{i}", init=i & 1) for i in range(width)]
    for i in range(width):
        ntk.create_po(ntk.create_and(ra[i], rb[i]), f"x{i}")
    for lit in a + b:
        ntk.create_ri(lit)
    return ntk


class TestSimulation:
    def test_counter_counts(self):
        outs = simulate_sequential(counter(), [[1]] * 6, 1)
        assert [decode(w, 0) for w in outs] == [1, 2, 3, 4, 5, 6]

    def test_enable_holds_state(self):
        outs = simulate_sequential(counter(), [[1], [0], [0], [1]], 1)
        assert [decode(w, 0) for w in outs] == [1, 1, 1, 2]

    def test_nonzero_init_respected(self):
        outs = simulate_sequential(counter(init=5), [[1]] * 2, 1)
        assert [decode(w, 0) for w in outs] == [6, 7]

    def test_bit_parallel_traces_independent(self):
        # bit 0 always enabled, bit 1 never: two traces in one word
        outs = simulate_sequential(counter(), [[0b01]] * 3, 0b11)
        assert [decode(w, 0) for w in outs] == [1, 2, 3]
        assert [decode(w, 1) for w in outs] == [0, 0, 0]

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expected 1 real-PI words"):
            simulate_sequential(counter(), [[1, 1]], 1)


class TestUnroll:
    def test_unrolled_counter_matches_sequential_sim(self):
        ntk = counter()
        depth = 4
        comb = unroll(ntk, depth)
        assert not comb.has_registers()
        assert comb.num_pis() == depth          # one "en" per frame
        assert comb.num_pos() == depth * ntk.num_pos()
        from repro.sim import simulate_words

        vals = simulate_words(comb, [1] * depth, 1)
        po_words = [vals[p >> 1] ^ (p & 1) for p in comb.pos]
        seq = simulate_sequential(ntk, [[1]] * depth, 1)
        flat = [w for frame in seq for w in frame]
        assert po_words == flat

    def test_uninitialized_unroll_exposes_state_as_pis(self):
        ntk = counter()
        comb = unroll(ntk, 2, initialized=False)
        assert comb.num_pis() == 2 + ntk.num_registers()

    def test_unroll_is_combinational_ground_truth_for_bmc(self):
        a, b = counter(), counter(init=1)
        ua, ub = unroll(a, 3), unroll(b, 3)
        assert not cec(ua, ub)                  # differ from frame 0
        assert bmc_cec(a, b, 3).equivalent is False


class TestBmcAndInduction:
    def test_bmc_proves_bounded_self_equivalence(self):
        res = bmc_cec(counter(), counter(), 5)
        assert res.equivalent is True and res.bounded

    def test_bmc_finds_divergence_depth(self):
        # two counters with different init diverge at the first frame
        res = bmc_cec(counter(init=0), counter(init=1), 8)
        assert res.equivalent is False
        assert res.depth == 1
        assert res.counterexample is not None

    def test_bmc_counterexample_replays(self):
        a, b = counter(init=0), counter(init=2)
        res = bmc_cec(a, b, 8)
        trace = [[int(v)] for frame in res.counterexample for v in [frame[0]]]
        oa = simulate_sequential(a, trace, 1)
        ob = simulate_sequential(b, trace, 1)
        assert oa[-1] != ob[-1]

    def test_k_induction_proves_retimed_circuit(self):
        ntk = registered_and_layer()
        out, moves = retime_forward(ntk)
        assert moves > 0
        res = k_induction_cec(ntk, out, max_k=6)
        assert res.equivalent is True
        assert not res.bounded

    def test_k_induction_base_case_refutes(self):
        res = k_induction_cec(counter(init=0), counter(init=3), max_k=4)
        assert res.equivalent is False
        assert res.counterexample

    def test_interface_mismatch_rejected(self):
        ntk = counter()
        other = Aig()
        other.create_pi("x")
        other.create_po(2)
        with pytest.raises(ValueError, match="interface mismatch"):
            bmc_cec(ntk, other, 2)

    def test_seq_cec_full_pipeline(self):
        res = seq_cec(counter(), counter())
        assert res.equivalent is True
        res = seq_cec(counter(init=0), counter(init=1))
        assert res.equivalent is False
        assert res.counterexample is not None


class TestRegisterSweep:
    def test_duplicate_registers_merge(self):
        ntk = Aig()
        a = ntk.create_pi("a")
        r1 = ntk.create_ro("r1", init=0)
        r2 = ntk.create_ro("r2", init=0)
        ntk.create_po(ntk.create_and(r1, r2), "out")
        ntk.create_ri(a)
        ntk.create_ri(a)                         # identical next-state
        out, merged = register_sweep(ntk)
        assert merged == 1
        assert out.num_registers() == 1
        assert seq_cec(ntk, out).equivalent is True

    def test_different_inits_do_not_merge(self):
        ntk = Aig()
        a = ntk.create_pi("a")
        r1 = ntk.create_ro("r1", init=0)
        r2 = ntk.create_ro("r2", init=1)
        ntk.create_po(ntk.create_xor(r1, r2), "out")
        ntk.create_ri(a)
        ntk.create_ri(a)
        out, merged = register_sweep(ntk)
        assert merged == 0 and out is ntk

    def test_sweep_preserves_behaviour_on_generated_suite(self):
        from repro.circuits import SEQUENTIAL

        for name in SEQUENTIAL:
            ntk = build(name, "tiny")
            out, merged = register_sweep(ntk)
            assert seq_cec(ntk, out, max_k=6).equivalent is not False, name


class TestRetiming:
    def test_moves_only_single_consumer_register_gates(self):
        # r.next = !r (self-loop): the register feeds both the gate and
        # itself, so nothing may move
        ntk = Aig()
        r = ntk.create_ro("r", init=0)
        ntk.create_po(r, "q")
        ntk.create_ri(r ^ 1)
        out, moves = retime_forward(ntk)
        assert moves == 0 and out is ntk

    def test_and_layer_collapses_and_stays_equivalent(self):
        ntk = registered_and_layer()
        out, moves = retime_forward(ntk)
        assert moves == 4
        assert out.num_registers() == ntk.num_registers() // 2
        assert seq_cec(ntk, out, max_k=8).equivalent is True

    def test_generated_suite_unchanged_when_nothing_is_eligible(self):
        # multi-fanout registers disqualify their gates; the conservative
        # transform must hand the same object back rather than rebuild
        ntk = build("pipeline", "tiny")
        out, moves = retime_forward(ntk)
        assert moves == 0 and out is ntk

    def test_init_values_propagate_through_moved_gates(self):
        # AND of two init=1 registers must become an init=1 register
        ntk = Aig()
        a = ntk.create_pi("a")
        b = ntk.create_pi("b")
        r1 = ntk.create_ro("r1", init=1)
        r2 = ntk.create_ro("r2", init=1)
        g = ntk.create_and(r1, r2)
        ntk.create_po(g, "out")
        ntk.create_ri(a)
        ntk.create_ri(b)
        out, moves = retime_forward(ntk)
        assert moves == 1
        assert out.num_registers() == 1
        assert out.registers[0][2] == 1
        assert seq_cec(ntk, out).equivalent is True
