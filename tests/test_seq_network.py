"""Register support in the network core: API, copies, flat transport."""

import pytest

from repro.circuits import SEQUENTIAL, build
from repro.networks import Aig
from repro.networks.base import require_combinational
from repro.networks.flat import FlatNetwork


def two_bit_counter() -> Aig:
    ntk = Aig()
    en = ntk.create_pi("en")
    r0 = ntk.create_ro("r0", init=0)
    r1 = ntk.create_ro("r1", init=1)
    n0 = ntk.create_xor(r0, en)
    n1 = ntk.create_xor(r1, ntk.create_and(r0, en))
    ntk.create_po(n0, "q0")
    ntk.create_po(n1, "q1")
    ntk.create_ri(n0)
    ntk.create_ri(n1)
    return ntk


class TestRegisterApi:
    def test_ro_is_a_pi_with_register_bookkeeping(self):
        ntk = two_bit_counter()
        assert ntk.num_pis() == 3          # en + 2 ROs in the comb skeleton
        assert ntk.num_real_pis() == 1
        assert ntk.num_registers() == 2
        assert ntk.has_registers()
        assert [init for _, _, init in ntk.registers] == [0, 1]
        ro0 = ntk.registers[0][0]
        assert ntk.is_ro(ro0)
        assert not ntk.is_ro(ntk.pis[0])   # "en" is a real PI

    def test_real_pis_excludes_register_outputs(self):
        ntk = two_bit_counter()
        assert len(ntk.real_pis) == 1
        assert ntk.pi_names[ntk.pis.index(ntk.real_pis[0])] == "en"

    def test_register_pairing_is_by_creation_order(self):
        ntk = Aig()
        a = ntk.create_ro("a", init=1)
        b = ntk.create_ro("b", init=0)
        ntk.create_po(ntk.create_and(a, b))
        ntk.create_ri(b)
        ntk.create_ri(a)
        regs = ntk.registers
        assert regs[0][2] == 1 and regs[1][2] == 0
        assert regs[0][1] == b and regs[1][1] == a

    def test_bad_init_rejected(self):
        with pytest.raises(ValueError, match="init value"):
            Aig().create_ro(init=2)

    def test_excess_ri_rejected(self):
        ntk = Aig()
        ntk.create_ro()
        ntk.create_ri(0)
        with pytest.raises(ValueError):
            ntk.create_ri(0)

    def test_unpaired_register_caught_on_access(self):
        ntk = Aig()
        ntk.create_ro()
        with pytest.raises(ValueError):
            ntk.registers

    def test_repr_shows_register_count(self):
        assert "regs=2" in repr(two_bit_counter())


class TestRequireCombinational:
    def test_error_names_circuit_and_latch_count(self):
        ntk = two_bit_counter()
        with pytest.raises(ValueError) as exc:
            require_combinational(ntk, "balance")
        msg = str(exc.value)
        assert "balance" in msg
        assert repr(ntk) in msg            # the circuit is named
        assert "2 register" in msg         # and the latch count carried
        assert "seq-" in msg               # with a pointer at the remedy

    def test_comb_networks_pass_through(self):
        require_combinational(build("ctrl", "tiny"), "anything")

    @pytest.mark.parametrize("engine,call", [
        ("balance", lambda n: __import__("repro.opt.balancing",
                                         fromlist=["balance"]).balance(n)),
        ("cec", lambda n: __import__("repro.sat.cec",
                                     fromlist=["cec"]).cec(n, n)),
    ])
    def test_comb_engines_refuse_registers(self, engine, call):
        with pytest.raises(ValueError, match="register"):
            call(two_bit_counter())


class TestSequentialCopies:
    def test_cleanup_preserves_registers_and_reachable_ri_cones(self):
        ntk = two_bit_counter()
        ntk.create_and(2, 4)                # dangling gate: cleanup fodder
        out = ntk.cleanup()
        assert out.num_registers() == 2
        assert [i for _, _, i in out.registers] == [0, 1]

    def test_cleanup_drops_registers_with_dead_cones(self):
        ntk = Aig()
        a = ntk.create_pi("a")
        r = ntk.create_ro("r", init=0)      # never observed
        ntk.create_po(a, "out")
        ntk.create_ri(r)
        out = ntk.cleanup()
        assert out.num_registers() == 0
        assert out.num_real_pis() == 1

    def test_copy_with_pi_map_refuses_registers(self):
        ntk = two_bit_counter()
        with pytest.raises(ValueError, match="register"):
            ntk.copy_into_with_map(Aig(), pi_map={})


class TestFlatTransport:
    def test_flat_roundtrip_preserves_registers(self):
        for name in SEQUENTIAL:
            ntk = build(name, "tiny")
            back = FlatNetwork.from_network(ntk).to_network()
            assert back.num_registers() == ntk.num_registers(), name
            assert back.registers == ntk.registers, name
            assert back.structural_hash() == ntk.structural_hash(), name

    def test_pack_unpack_bit_exact(self):
        flat = FlatNetwork.from_network(two_bit_counter())
        header = flat.header()
        assert header["n_regs"] == 2
        assert FlatNetwork.unpack(header, flat.pack()) == flat

    def test_shm_transport(self):
        flat = FlatNetwork.from_network(two_bit_counter())
        shm, header = flat.to_shared_memory()
        try:
            assert FlatNetwork.from_shared_memory(header) == flat
        finally:
            shm.close()
            shm.unlink()

    def test_hash_distinguishes_init_values(self):
        a = two_bit_counter()
        b = Aig()
        en = b.create_pi("en")
        r0 = b.create_ro("r0", init=1)      # flipped init
        r1 = b.create_ro("r1", init=1)
        n0 = b.create_xor(r0, en)
        n1 = b.create_xor(r1, b.create_and(r0, en))
        b.create_po(n0, "q0")
        b.create_po(n1, "q1")
        b.create_ri(n0)
        b.create_ri(n1)
        assert a.structural_hash() != b.structural_hash()

    def test_hash_distinguishes_registered_from_pure_comb(self):
        seq = two_bit_counter()
        comb = Aig()
        for j, n in enumerate(seq.pis):
            comb.create_pi(seq.pi_names[j])
        # same gate structure, no registers
        en, r0, r1 = comb.pis[0] * 2, comb.pis[1] * 2, comb.pis[2] * 2
        n0 = comb.create_xor(r0, en)
        n1 = comb.create_xor(r1, comb.create_and(r0, en))
        comb.create_po(n0, "q0")
        comb.create_po(n1, "q1")
        assert seq.structural_hash() != comb.structural_hash()
