"""Tests for optimization passes: balance, sweep, equivalence, flows."""

import pytest

from repro.circuits import build
from repro.networks import Aig, Xag
from repro.networks.base import lit_not
from repro.opt import balance, compress2rs, functional_classes, optimize_rounds, sweep
from repro.sat import cec


class TestBalance:
    def test_chain_becomes_log_depth(self):
        ntk = Aig()
        lits = [ntk.create_pi() for _ in range(16)]
        ntk.create_po(ntk.create_nary_and(lits, balanced=False))  # depth 15 chain
        assert ntk.depth() == 15
        b = balance(ntk)
        assert b.depth() == 4
        assert cec(ntk, b)

    def test_xor_chain(self):
        ntk = Xag()
        lits = [ntk.create_pi() for _ in range(8)]
        ntk.create_po(ntk.create_nary_xor(lits, balanced=False))
        b = balance(ntk)
        assert b.depth() == 3
        assert cec(ntk, b)

    def test_shared_nodes_not_flattened(self):
        ntk = Aig()
        a, b, c, d = (ntk.create_pi() for _ in range(4))
        shared = ntk.create_and(a, b)
        g1 = ntk.create_and(shared, c)
        g2 = ntk.create_and(shared, d)
        ntk.create_po(g1)
        ntk.create_po(g2)
        out = balance(ntk)
        assert cec(ntk, out)
        assert out.num_gates() <= 3  # sharing preserved

    @pytest.mark.parametrize("name", ["adder", "sin", "priority"])
    def test_suite_equivalence(self, name):
        ntk = build(name, "tiny")
        b = balance(ntk)
        assert cec(ntk, b)
        assert b.depth() <= ntk.depth()


class TestEquivalenceClasses:
    def test_detects_duplicate_logic(self):
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g1 = ntk.create_and(a, ntk.create_and(b, c))
        g2 = ntk.create_and(ntk.create_and(a, b), c)  # same function, diff structure
        ntk.create_po(g1)
        ntk.create_po(g2)
        classes = functional_classes(ntk)
        flat = [set(m for m, _ in cls) for cls in classes]
        assert any({g1 >> 1, g2 >> 1} <= s for s in flat)

    def test_detects_complement_pairs(self):
        ntk = Aig()
        a, b = ntk.create_pi(), ntk.create_pi()
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_or(lit_not(a), lit_not(b))  # = !g1 structurally distinct?
        ntk.create_po(g1)
        ntk.create_po(g2)
        classes = functional_classes(ntk)
        if classes:  # strashing may already have merged them
            for cls in classes:
                nodes = [m for m, _ in cls]
                if (g1 >> 1) in nodes and (g2 >> 1) in nodes:
                    phases = {m: p for m, p in cls}
                    assert phases[g2 >> 1] != phases[g1 >> 1]

    def test_sat_rejects_false_positives(self):
        # craft signature-colliding but inequivalent nodes: with few rounds of
        # sim the SAT stage must still keep results sound
        ntk = build("priority", "tiny")
        classes = functional_classes(ntk, sim_rounds=1, width=8, sat_verify=True)
        import random
        rng = random.Random(9)
        mask = (1 << 64) - 1
        pats = [rng.getrandbits(64) for _ in range(ntk.num_pis())]
        vals = ntk.simulate_patterns(pats, mask)
        for cls in classes:
            rep, _ = cls[0]
            for node, phase in cls[1:]:
                assert vals[node] == (vals[rep] ^ (mask if phase else 0))


class TestSweep:
    def test_merges_redundancy(self):
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g1 = ntk.create_and(a, ntk.create_and(b, c))
        g2 = ntk.create_and(ntk.create_and(a, b), c)
        ntk.create_po(g1)
        ntk.create_po(g2)
        out = sweep(ntk)
        assert out.num_gates() < ntk.num_gates()
        assert cec(ntk, out)

    @pytest.mark.parametrize("name", ["int2float", "router"])
    def test_suite_equivalence(self, name):
        ntk = build(name, "tiny")
        out = sweep(ntk)
        assert cec(ntk, out)
        assert out.num_gates() <= ntk.num_gates()


class TestFlows:
    @pytest.mark.parametrize("name", ["adder", "log2", "cavlc"])
    def test_compress2rs_reduces_and_preserves(self, name):
        ntk = build(name, "tiny")
        out = compress2rs(ntk)
        assert cec(ntk, out)
        assert out.num_gates() <= ntk.num_gates()

    def test_optimize_rounds_snapshots(self):
        ntk = build("adder", "tiny")
        snaps = optimize_rounds(ntk, rounds=2)
        assert len(snaps) == 3
        assert snaps[0] is ntk
        for s in snaps[1:]:
            assert cec(ntk, s)

    def test_unknown_script(self):
        with pytest.raises(ValueError):
            optimize_rounds(build("adder", "tiny"), script="mystery")
