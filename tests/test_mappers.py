"""Tests for the LUT mapper and graph mapper (plain and choice-aware)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import build
from repro.core import MchParams, build_mch
from repro.mapping import graph_map, graph_map_iterate, lut_map
from repro.networks import Aig, Mig, MixedNetwork, Xag, Xmg
from repro.sat import cec


def small_adder():
    return build("adder", "tiny")


class TestLutMap:
    def test_equivalence(self):
        ntk = small_adder()
        lut = lut_map(ntk, k=6, objective="area")
        assert cec(ntk, lut.to_logic_network(Aig))

    def test_k_respected(self):
        ntk = small_adder()
        for k in (3, 4, 6):
            lut = lut_map(ntk, k=k)
            for n in range(len(lut._is_lut)):
                if lut.is_lut(n):
                    assert len(lut.fanins(n)) <= k

    def test_delay_objective_not_deeper(self):
        ntk = build("max", "tiny")
        d = lut_map(ntk, k=6, objective="delay").depth()
        a = lut_map(ntk, k=6, objective="area").depth()
        assert d <= a

    def test_area_objective_not_bigger(self):
        ntk = build("max", "tiny")
        d = lut_map(ntk, k=6, objective="delay").num_luts()
        a = lut_map(ntk, k=6, objective="area").num_luts()
        assert a <= d

    def test_po_on_pi_and_const(self):
        ntk = Aig()
        a = ntk.create_pi()
        ntk.create_po(a)            # PO directly on a PI
        ntk.create_po(ntk.const1)   # constant PO
        ntk.create_po(a ^ 1)        # complemented PI
        lut = lut_map(ntk)
        assert lut.num_luts() == 0
        assert lut.simulate([True]) == [True, True, False]

    def test_bad_objective(self):
        with pytest.raises(ValueError):
            lut_map(small_adder(), objective="power")

    @pytest.mark.parametrize("name", ["multiplier", "priority", "voter"])
    def test_suite_equivalence(self, name):
        ntk = build(name, "tiny")
        lut = lut_map(ntk, k=6, objective="area")
        assert cec(ntk, lut.to_logic_network(Aig))


class TestLutMapWithChoices:
    def test_mch_never_worse_depth(self):
        ntk = small_adder()
        plain = lut_map(ntk, k=6, objective="delay")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        mch = lut_map(ch, k=6, objective="delay")
        assert mch.depth() <= plain.depth()
        assert cec(ntk, mch.to_logic_network(Aig))

    def test_mch_adder_improves_depth(self):
        # XMG choices expose the XOR3/MAJ carry chain: depth must drop
        ntk = build("adder", "tiny")
        plain = lut_map(ntk, k=6, objective="delay")
        ch = build_mch(ntk, MchParams(representations=(Xmg,)))
        mch = lut_map(ch, k=6, objective="delay")
        assert mch.depth() < plain.depth()

    def test_choice_verify(self):
        ntk = build("sin", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Xmg, Xag)))
        assert ch.verify()
        assert ch.num_choices() > 0

    def test_mch_equivalence_multiple_reps(self):
        ntk = build("log2", "tiny")
        ch = build_mch(ntk, MchParams(representations=(Mig, Xag)))
        lut = lut_map(ch, k=4, objective="area")
        assert cec(ntk, lut.to_logic_network(Aig))


class TestLutNetwork:
    def test_create_lut_validation(self):
        from repro.networks import LutNetwork
        from repro.truth.truth_table import TruthTable

        lut = LutNetwork(4)
        a = lut.create_pi()
        with pytest.raises(ValueError):
            lut.create_lut([a], TruthTable.var(2, 0))  # arity mismatch
        with pytest.raises(ValueError):
            lut.create_lut([a] * 5, TruthTable.var(5, 0))  # k exceeded
        with pytest.raises(ValueError):
            lut.create_lut([99], TruthTable.var(1, 0))  # unknown fanin

    def test_to_logic_network_all_reps(self):
        ntk = small_adder()
        lut = lut_map(ntk, k=4)
        for cls in (Aig, Xmg, MixedNetwork):
            back = lut.to_logic_network(cls)
            assert cec(ntk, back)

    def test_depth_levels(self):
        ntk = small_adder()
        lut = lut_map(ntk, k=6)
        lev = lut.levels()
        assert lut.depth() == max(lev[n] for n, _ in lut.pos)


class TestGraphMap:
    @pytest.mark.parametrize("target", [Aig, Xag, Mig, Xmg])
    def test_equivalence_all_targets(self, target):
        ntk = small_adder()
        out = graph_map(ntk, target, objective="area")
        assert cec(ntk, out)
        assert type(out) is target

    def test_xmg_compresses_adder(self):
        # the XOR3/MAJ vocabulary must shrink an adder significantly
        ntk = build("adder", "tiny")
        xmg = graph_map(ntk, Xmg, objective="area")
        assert xmg.num_gates() < ntk.num_gates() / 2

    def test_delay_objective(self):
        ntk = build("max", "tiny")
        d = graph_map(ntk, Aig, objective="delay")
        a = graph_map(ntk, Aig, objective="area")
        assert d.depth() <= a.depth()
        assert cec(ntk, d) and cec(ntk, a)

    def test_iterate_converges(self):
        ntk = build("sin", "tiny")
        out = graph_map_iterate(ntk, Xmg, objective="area", max_rounds=4)
        again = graph_map(out, Xmg, objective="area")
        assert again.num_gates() >= out.num_gates()
        assert cec(ntk, out)

    def test_graph_map_with_choices(self):
        ntk = build("adder", "tiny")
        base = graph_map_iterate(ntk, Xmg, objective="area", max_rounds=4)
        ch = build_mch(base, MchParams(representations=(Mig, Xmg)))
        improved = graph_map(ch, Xmg, objective="area")
        assert cec(ntk, improved)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_networks(self, seed):
        import random
        rng = random.Random(seed)
        ntk = Aig()
        lits = [ntk.create_pi() for _ in range(5)]
        for _ in range(25):
            a, b = rng.choice(lits) ^ rng.randint(0, 1), rng.choice(lits) ^ rng.randint(0, 1)
            lits.append(ntk.create_and(a, b))
        ntk.create_po(lits[-1])
        ntk.create_po(lits[len(lits) // 2])
        out = graph_map(ntk, Xmg, objective="area")
        assert cec(ntk, out)
