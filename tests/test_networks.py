"""Tests for logic-network DAGs, strashing and conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import Aig, GateType, Mig, MixedNetwork, Xag, Xmg, convert
from repro.networks.base import lit_not
from repro.truth.truth_table import TruthTable


def build_full_adder(ntk):
    a = ntk.create_pi("a")
    b = ntk.create_pi("b")
    cin = ntk.create_pi("cin")
    s = ntk.create_xor3(a, b, cin)
    cout = ntk.create_maj(a, b, cin)
    ntk.create_po(s, "sum")
    ntk.create_po(cout, "cout")
    return ntk


class TestConstruction:
    def test_constants(self):
        ntk = Aig()
        assert ntk.const0 == 0
        assert ntk.const1 == 1

    def test_and_normalization(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        assert ntk.create_and(a, ntk.const0) == ntk.const0
        assert ntk.create_and(a, ntk.const1) == a
        assert ntk.create_and(a, a) == a
        assert ntk.create_and(a, lit_not(a)) == ntk.const0
        assert ntk.create_and(a, b) == ntk.create_and(b, a)  # strash + sort

    def test_strash_no_duplicates(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        n1 = ntk.create_and(a, b)
        n2 = ntk.create_and(a, b)
        assert n1 == n2
        assert ntk.num_gates() == 1

    def test_xor_phase_normalization(self):
        ntk = Xag()
        a = ntk.create_pi()
        b = ntk.create_pi()
        x1 = ntk.create_xor(a, b)
        x2 = ntk.create_xor(lit_not(a), b)
        assert x1 == lit_not(x2)
        assert ntk.num_gates() == 1

    def test_xor_collapses(self):
        ntk = Xag()
        a = ntk.create_pi()
        assert ntk.create_xor(a, a) == ntk.const0
        assert ntk.create_xor(a, lit_not(a)) == ntk.const1
        assert ntk.create_xor(a, ntk.const0) == a
        assert ntk.create_xor(a, ntk.const1) == lit_not(a)

    def test_maj_normalization(self):
        ntk = Mig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        assert ntk.create_maj(a, a, b) == a
        assert ntk.create_maj(a, lit_not(a), c) == c
        m1 = ntk.create_maj(a, b, c)
        m2 = ntk.create_maj(lit_not(a), lit_not(b), lit_not(c))
        assert m1 == lit_not(m2)  # self-duality

    def test_aig_disallows_xor_node(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        x = ntk.create_xor(a, b)  # decomposed into ANDs
        assert ntk.num_gates() == 3
        tts = None
        ntk.create_po(x)
        tts = ntk.simulate_truth_tables()
        assert tts[0] == TruthTable.var(2, 0) ^ TruthTable.var(2, 1)

    def test_mig_and_is_maj_with_const(self):
        ntk = Mig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        g = ntk.create_and(a, b)
        node = g >> 1
        assert ntk.node_type(node) == GateType.MAJ
        assert 0 in [f & ~1 for f in ntk.fanins(node)]

    def test_po_unknown_node_raises(self):
        ntk = Aig()
        with pytest.raises(ValueError):
            ntk.create_po(100)


class TestSimulation:
    @pytest.mark.parametrize("cls", [Aig, Xag, Mig, Xmg, MixedNetwork])
    def test_full_adder_truth(self, cls):
        ntk = build_full_adder(cls())
        tts = ntk.simulate_truth_tables()
        s_expect = TruthTable.from_function(3, lambda a, b, c: (a + b + c) % 2 == 1)
        c_expect = TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2)
        assert tts[0] == s_expect
        assert tts[1] == c_expect

    def test_simulate_single(self):
        ntk = build_full_adder(Aig())
        assert ntk.simulate([True, True, False]) == [False, True]
        assert ntk.simulate([True, False, False]) == [True, False]

    def test_mux(self):
        for cls in (Aig, Mig, Xmg):
            ntk = cls()
            s = ntk.create_pi()
            t = ntk.create_pi()
            e = ntk.create_pi()
            ntk.create_po(ntk.create_mux(s, t, e))
            tt = ntk.simulate_truth_tables()[0]
            expect = TruthTable.from_function(3, lambda s_, t_, e_: t_ if s_ else e_)
            assert tt == expect


class TestAnalysis:
    def test_levels_depth(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(g1, c)
        ntk.create_po(g2)
        lev = ntk.levels()
        assert lev[g1 >> 1] == 1
        assert lev[g2 >> 1] == 2
        assert ntk.depth() == 2

    def test_fanout_counts(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(g1, a)
        ntk.create_po(g1)
        ntk.create_po(g2)
        cnt = ntk.fanout_counts()
        assert cnt[g1 >> 1] == 2  # feeds g2 and a PO
        assert cnt[a >> 1] == 2

    def test_tfi_tfo(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(g1, c)
        ntk.create_po(g2)
        assert (g1 >> 1) in ntk.tfi(g2 >> 1)
        assert (g2 >> 1) in ntk.tfo(g1 >> 1)
        assert (c >> 1) not in ntk.tfi(g1 >> 1)

    def test_mffc(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        g1 = ntk.create_and(a, b)   # only used by g2
        g2 = ntk.create_and(g1, c)
        ntk.create_po(g2)
        cone = ntk.mffc(g2 >> 1)
        assert cone == {g1 >> 1, g2 >> 1}

    def test_mffc_stops_at_shared(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        c = ntk.create_pi()
        g1 = ntk.create_and(a, b)
        g2 = ntk.create_and(g1, c)
        ntk.create_po(g1)  # g1 shared with a PO
        ntk.create_po(g2)
        assert ntk.mffc(g2 >> 1) == {g2 >> 1}


class TestCopyConvert:
    @pytest.mark.parametrize("dst_cls", [Aig, Xag, Mig, Xmg, MixedNetwork])
    def test_convert_preserves_function(self, dst_cls):
        src = build_full_adder(MixedNetwork())
        dst = convert(src, dst_cls)
        assert dst.simulate_truth_tables() == src.simulate_truth_tables()
        assert dst.pi_names == src.pi_names
        assert dst.po_names == src.po_names

    def test_one_to_one_aig_to_mig_size(self):
        src = Aig()
        a = src.create_pi()
        b = src.create_pi()
        c = src.create_pi()
        src.create_po(src.create_and(src.create_and(a, b), c))
        dst = convert(src, Mig)
        assert dst.num_gates() == src.num_gates()  # gate-for-gate embedding

    def test_cleanup_removes_dangling(self):
        ntk = Aig()
        a = ntk.create_pi()
        b = ntk.create_pi()
        g1 = ntk.create_and(a, b)
        ntk.create_and(a, lit_not(b))  # dangling
        ntk.create_po(g1)
        clean = ntk.cleanup()
        assert clean.num_gates() == 1
        assert clean.num_pis() == 2

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_random_function_conversion_roundtrip(self, bits):
        tt = TruthTable(3, bits)
        src = MixedNetwork()
        pis = [src.create_pi() for _ in range(3)]
        # minterm-SOP construction
        terms = []
        for m in range(8):
            if tt.get_bit(m):
                lits = [pis[v] if (m >> v) & 1 else lit_not(pis[v]) for v in range(3)]
                terms.append(src.create_nary_and(lits))
        out = src.create_nary_or(terms)
        src.create_po(out)
        assert src.simulate_truth_tables()[0] == tt
        for cls in (Aig, Mig, Xmg):
            assert convert(src, cls).simulate_truth_tables()[0] == tt
