"""Flow engine vs legacy behavior, optimize_rounds rework, script fuzzing."""

import random

import pytest

from repro.circuits import build
from repro.flow import Flow, FlowContext, FlowRunner, optimize, run_flow
from repro.mapping.graph_mapper import graph_map
from repro.opt import compress2rs, optimize_rounds, resyn2rs
from repro.opt.balancing import balance
from repro.sat import cec


def legacy_compress2rs(ntk, rounds=4):
    """The pre-flow-API compress2rs loop, inlined as the golden reference."""
    best = ntk
    best_cost = (ntk.num_gates(), ntk.depth())
    current = ntk
    for _ in range(rounds):
        current = balance(current)
        current = graph_map(current, type(current), objective="area", k=4)
        current = balance(current)
        cost = (current.num_gates(), current.depth())
        if cost >= best_cost:
            break
        best, best_cost = current, cost
    return best


class TestFlowVsLegacy:
    @pytest.mark.parametrize("name", ["ctrl", "int2float", "router"])
    def test_compress2rs_flow_bit_matches_legacy(self, name):
        ntk = build(name, "tiny")
        old = legacy_compress2rs(ntk)
        new = compress2rs(ntk)
        assert (new.num_gates(), new.depth()) == (old.num_gates(), old.depth())
        assert cec(ntk, new)

    def test_compress2rs_spec_round_trips_through_script_text(self):
        # the canonical spec survives serialization and still bit-matches
        from repro.flow import compress2rs_flow

        flow = compress2rs_flow(rounds=4)
        reparsed = Flow.parse(flow.to_script())
        ntk = build("int2float", "tiny")
        a = FlowRunner().run(ntk, flow).network
        b = FlowRunner().run(ntk, reparsed).network
        assert (a.num_gates(), a.depth()) == (b.num_gates(), b.depth())

    def test_resyn2rs_flow_verified(self):
        ntk = build("cavlc", "tiny")
        out = resyn2rs(ntk, rounds=2)
        assert cec(ntk, out)
        assert out.num_gates() <= ntk.num_gates()

    def test_optimize_front_door_matches_compress2rs(self):
        ntk = build("router", "tiny")
        assert optimize(ntk, rounds=2).num_gates() \
            == compress2rs(ntk, rounds=2).num_gates()


class TestOptimizeRounds:
    def test_inner_rounds_is_exposed(self):
        ntk = build("router", "tiny")
        shallow = optimize_rounds(ntk, rounds=1, inner_rounds=1)
        deep = optimize_rounds(ntk, rounds=1, inner_rounds=4)
        assert len(shallow) == len(deep) == 2
        assert cec(ntk, shallow[1]) and cec(ntk, deep[1])
        # inner_rounds=N is compress2rs(rounds=N) on each snapshot
        assert deep[1].num_gates() == compress2rs(ntk, rounds=4).num_gates()
        assert shallow[1].num_gates() == compress2rs(ntk, rounds=1).num_gates()

    def test_arbitrary_script_text_is_accepted(self):
        ntk = build("ctrl", "tiny")
        snaps = optimize_rounds(ntk, script="b; rf; b", rounds=2)
        assert len(snaps) == 3
        for s in snaps[1:]:
            assert cec(ntk, s)

    def test_flow_object_is_accepted(self):
        ntk = build("ctrl", "tiny")
        snaps = optimize_rounds(ntk, script=Flow.parse("b"), rounds=1)
        assert cec(ntk, snaps[1])

    def test_invalid_script_rejected_by_registry(self):
        with pytest.raises(ValueError):
            optimize_rounds(build("ctrl", "tiny"), script="mystery")
        with pytest.raises(ValueError):
            optimize_rounds(build("ctrl", "tiny"), script="b; warp 9")


class TestConvergeSemantics:
    def test_converge_never_returns_worse_than_input(self):
        ntk = build("int2float", "tiny")
        out = run_flow(ntk, "converge4( b; gm -o area; b )").network
        assert (out.num_gates(), out.depth()) \
            <= (ntk.num_gates(), ntk.depth())

    def test_converge_keeps_best_not_last(self):
        # 'rf -z' accepts size-neutral rewrites: cost can oscillate; converge
        # must still return the best state seen
        ntk = build("ctrl", "tiny")
        out = run_flow(ntk, "converge3( b; rf -z )").network
        assert out.num_gates() <= balance(ntk).num_gates()
        assert cec(ntk, out)


SAFE_FUZZ_PASSES = ["b", "rf", "rs", "sw", "gm", "cv"]


class TestScriptFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_flows_preserve_equivalence(self, seed):
        from repro.flow.script import random_flow

        rng = random.Random(1000 + seed)
        flow = random_flow(rng, SAFE_FUZZ_PASSES, max_steps=4, depth=1)
        ntk = build(rng.choice(["ctrl", "int2float", "router"]), "tiny")
        ctx = FlowContext()
        result = FlowRunner(ctx).run(ntk, flow)
        assert bool(ctx.cec(ntk, result.network)), \
            f"flow {flow.to_script()!r} broke equivalence (seed {seed})"

    @pytest.mark.parametrize("seed", range(3))
    def test_random_flows_ending_in_mapping(self, seed):
        from repro.flow.script import random_flow

        rng = random.Random(2000 + seed)
        prefix = random_flow(rng, SAFE_FUZZ_PASSES, max_steps=3, depth=0)
        suffix = rng.choice(["if -k 4", "am", "mch; if -k 4", "dch -n 1 -i 1; am"])
        script = (prefix.to_script() + "; " + suffix).lstrip("; ")
        ntk = build("ctrl", "tiny")
        ctx = FlowContext()
        result = FlowRunner(ctx).run(ntk, script)
        assert bool(ctx.cec(ntk, result.network)), \
            f"flow {script!r} broke equivalence (seed {seed})"
