"""Tests for NPN canonization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truth.npn import apply_transform, canonicalize, inverse_transform, semi_canonicalize
from repro.truth.truth_table import TruthTable


class TestApplyTransform:
    def test_identity(self):
        tt = TruthTable.from_hex(3, "e8")  # MAJ
        ident = ((0, 1, 2), (False, False, False), False)
        assert apply_transform(tt, ident) == tt

    def test_output_negation(self):
        tt = TruthTable.from_hex(2, "8")
        t = ((0, 1), (False, False), True)
        assert apply_transform(tt, t) == ~tt

    def test_input_negation(self):
        # f = a AND b;  negate input a -> !a AND b
        tt = TruthTable.from_function(2, lambda a, b: a and b)
        t = ((0, 1), (True, False), False)
        expect = TruthTable.from_function(2, lambda a, b: (not a) and b)
        assert apply_transform(tt, t) == expect

    def test_permutation(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a and not b and c)
        t = ((1, 0, 2), (False, False, False), False)
        got = apply_transform(tt, t)
        expect = TruthTable.from_function(3, lambda a, b, c: b and not a and c)
        assert got == expect

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            apply_transform(TruthTable.var(3, 0), ((0, 1), (False, False), False))


class TestCanonicalize:
    def test_transform_contract(self):
        tt = TruthTable.from_hex(4, "cafe")
        canon, t = canonicalize(tt)
        assert apply_transform(tt, t) == canon

    def test_npn_equivalent_functions_share_canon(self):
        # AND(a, b) vs NOR(a, b) vs AND(!a, b): all NPN-equivalent
        f1 = TruthTable.from_function(2, lambda a, b: a and b)
        f2 = TruthTable.from_function(2, lambda a, b: not (a or b))
        f3 = TruthTable.from_function(2, lambda a, b: (not a) and b)
        c1, _ = canonicalize(f1)
        c2, _ = canonicalize(f2)
        c3, _ = canonicalize(f3)
        assert c1 == c2 == c3

    def test_xor_and_not_equiv(self):
        f1 = TruthTable.from_function(2, lambda a, b: a != b)
        f2 = TruthTable.from_function(2, lambda a, b: a and b)
        assert canonicalize(f1)[0] != canonicalize(f2)[0]

    def test_too_many_vars(self):
        with pytest.raises(ValueError):
            canonicalize(TruthTable.var(5, 0))

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1), st.data())
    @settings(max_examples=60, deadline=None)
    def test_canon_invariant_under_random_transform(self, bits, data):
        tt = TruthTable(4, bits)
        perm = tuple(data.draw(st.permutations(range(4))))
        phases = tuple(data.draw(st.booleans()) for _ in range(4))
        out = data.draw(st.booleans())
        variant = apply_transform(tt, (perm, phases, out))
        assert canonicalize(tt)[0] == canonicalize(variant)[0]

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=60, deadline=None)
    def test_inverse_transform_roundtrip(self, bits):
        tt = TruthTable(4, bits)
        canon, t = canonicalize(tt)
        assert apply_transform(canon, inverse_transform(t)) == tt


class TestSemiCanonical:
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=40, deadline=None)
    def test_contract_5vars(self, bits):
        tt = TruthTable(5, bits)
        norm, t = semi_canonicalize(tt)
        assert apply_transform(tt, t) == norm

    def test_deterministic(self):
        tt = TruthTable.from_hex(5, "deadbeef")
        a, _ = semi_canonicalize(tt)
        b, _ = semi_canonicalize(tt)
        assert a == b
