"""Tests for refactoring, resubstitution and MIG depth rewriting."""

import pytest

from repro.circuits import build
from repro.networks import Aig, Mig, Xmg, convert
from repro.networks.base import lit_not
from repro.opt import mig_depth_rewrite, refactor, resub
from repro.sat import cec


class TestRefactor:
    def test_collapses_redundant_cone(self):
        # (a & b) | (a & c) | (b & c) built wastefully: refactor finds a
        # smaller factored form of the cone
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        t1 = ntk.create_and(a, b)
        t2 = ntk.create_and(a, c)
        t3 = ntk.create_and(b, c)
        o1 = ntk.create_or(t1, t2)
        maj = ntk.create_or(o1, t3)
        # add more redundancy on top
        redundant = ntk.create_or(maj, ntk.create_and(t1, c))
        ntk.create_po(redundant)
        out = refactor(ntk)
        assert cec(ntk, out)
        assert out.num_gates() <= ntk.num_gates()

    @pytest.mark.parametrize("name", ["adder", "sin", "cavlc", "router"])
    def test_suite_equivalence(self, name):
        ntk = build(name, "tiny")
        out = refactor(ntk)
        assert cec(ntk, out), name
        assert out.num_gates() <= ntk.num_gates()

    def test_works_on_xmg(self):
        ntk = convert(build("adder", "tiny"), Xmg)
        out = refactor(ntk)
        assert cec(ntk, out)
        assert type(out) is Xmg

    def test_zero_gain_mode(self):
        ntk = build("ctrl", "tiny")
        out = refactor(ntk, allow_zero_gain=True)
        assert cec(ntk, out)

    def test_min_cone_respected(self):
        ntk = build("dec", "tiny")
        out = refactor(ntk, min_cone=10**9)  # nothing qualifies
        assert out.num_gates() == ntk.cleanup().num_gates()


class TestResub:
    def test_finds_known_resubstitution(self):
        # g = a&b exists; target = a&b&c&(a|c) == (a&b)&c — resub should
        # express the target from existing divisors and shrink its MFFC
        ntk = Aig()
        a, b, c = (ntk.create_pi() for _ in range(3))
        g = ntk.create_and(a, b)
        ntk.create_po(g)  # make g a stable divisor
        t1 = ntk.create_and(a, c)
        t2 = ntk.create_and(t1, b)  # equals g & c structurally differently
        ntk.create_po(t2)
        out = resub(ntk)
        assert cec(ntk, out)
        assert out.num_gates() <= ntk.num_gates()

    @pytest.mark.parametrize("name", ["int2float", "cavlc", "log2"])
    def test_suite_equivalence(self, name):
        ntk = build(name, "tiny")
        out = resub(ntk)
        assert cec(ntk, out), name
        assert out.num_gates() <= ntk.num_gates()

    def test_noop_on_mig(self):
        ntk = convert(build("adder", "tiny"), Mig)
        out = resub(ntk)  # no AND gates to target
        assert out is ntk or cec(ntk, out)


class TestMigDepthRewrite:
    def test_associativity_chain(self):
        # a deep chain M(d, c, M(c, b, M(b, a, x))) has sharable literals;
        # rewriting must not break equivalence and should not deepen
        ntk = Mig()
        a, b, c, d, x = (ntk.create_pi() for _ in range(5))
        m1 = ntk.create_maj(b, a, x)
        m2 = ntk.create_maj(c, b, m1)
        m3 = ntk.create_maj(d, c, m2)
        ntk.create_po(m3)
        out = mig_depth_rewrite(ntk)
        assert cec(ntk, out)
        assert out.depth() <= ntk.depth()

    @pytest.mark.parametrize("name", ["adder", "max", "voter"])
    def test_suite_equivalence(self, name):
        ntk = convert(build(name, "tiny"), Mig)
        out = mig_depth_rewrite(ntk, rounds=2)
        assert cec(ntk, out), name
        assert out.depth() <= ntk.depth()

    def test_xmg_supported(self):
        ntk = convert(build("adder", "tiny"), Xmg)
        out = mig_depth_rewrite(ntk)
        assert cec(ntk, out)

    def test_check_swap_guard(self):
        from repro.opt.mig_rewriting import _check_swap

        # literals over 4 distinct nodes: the identity holds
        assert _check_swap(2 << 1, 3 << 1, 4 << 1, 5 << 1)
        # complemented duplicates still verified correctly
        assert _check_swap((2 << 1) | 1, 3 << 1, (3 << 1) | 1, 5 << 1) in (True, False)
