"""Cross-checks of NPN canonization against known class counts.

The number of NPN equivalence classes of Boolean functions is a classical
sequence (OEIS A000370): 2 classes for n=1 (counting constants as one class
with the projection? — precisely: 2, 4, 14, 222 for n = 0..3 including both
constants as one class each).  Enumerating all functions and counting
distinct canonical forms validates the entire transform machinery at once.
"""

from repro.truth.npn import canonicalize
from repro.truth.truth_table import TruthTable


def count_classes(n: int) -> int:
    seen = set()
    for bits in range(1 << (1 << n)):
        canon, _ = canonicalize(TruthTable(n, bits))
        seen.add(canon.bits)
    return len(seen)


class TestNpnClassCounts:
    def test_zero_vars(self):
        # two constants, NPN-equivalent to each other via output negation
        assert count_classes(0) == 1

    def test_one_var(self):
        # {const} and {x / !x}
        assert count_classes(1) == 2

    def test_two_vars(self):
        # classic result: 4 NPN classes of 2-input functions
        assert count_classes(2) == 4

    def test_three_vars(self):
        # classic result: 14 NPN classes of 3-input functions
        assert count_classes(3) == 14


class TestClassRepresentatives:
    def test_every_class_member_maps_to_itself(self):
        # canonical forms must be fixpoints of canonization
        for bits in range(256):
            canon, _ = canonicalize(TruthTable(3, bits))
            again, _ = canonicalize(canon)
            assert again == canon
