"""Tests for the bit-parallel simulation engine and pattern pools."""

import random

import pytest

from repro.networks import Aig, MixedNetwork
from repro.networks.base import GateType, lit_not
from repro.sim import PatternPool, SimEngine, simulate_words


def naive_simulate(ntk, pi_patterns, mask):
    """Straight-line reference simulation (no batching, no caching)."""
    vals = [0] * ntk.num_nodes()
    for i, n in enumerate(ntk.pis):
        vals[n] = pi_patterns[i] & mask

    def v(lit):
        x = vals[lit >> 1]
        return x ^ mask if lit & 1 else x

    for n in range(ntk.num_nodes()):
        if not ntk.is_gate(n):
            continue
        t = ntk.node_type(n)
        fis = ntk.fanins(n)
        if t == GateType.AND:
            vals[n] = v(fis[0]) & v(fis[1])
        elif t == GateType.XOR:
            vals[n] = v(fis[0]) ^ v(fis[1])
        elif t == GateType.MAJ:
            a, b, c = (v(f) for f in fis)
            vals[n] = (a & b) | (a & c) | (b & c)
        else:
            a, b, c = (v(f) for f in fis)
            vals[n] = a ^ b ^ c
    return vals


def random_mixed_network(seed, n_pis=6, n_gates=30):
    rng = random.Random(seed)
    ntk = MixedNetwork()
    lits = [ntk.create_pi() for _ in range(n_pis)]
    for _ in range(n_gates):
        kind = rng.randrange(4)
        pick = lambda: rng.choice(lits) ^ rng.randrange(2)
        if kind == 0:
            lits.append(ntk.create_and(pick(), pick()))
        elif kind == 1:
            lits.append(ntk.create_xor(pick(), pick()))
        elif kind == 2:
            lits.append(ntk.create_maj(pick(), pick(), pick()))
        else:
            lits.append(ntk.create_xor3(pick(), pick(), pick()))
    ntk.create_po(lits[-1])
    ntk.create_po(lits[-2])
    return ntk


class TestSimulateWords:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_naive_reference(self, seed):
        ntk = random_mixed_network(seed)
        rng = random.Random(seed + 100)
        width = 64
        mask = (1 << width) - 1
        pats = [rng.getrandbits(width) for _ in range(ntk.num_pis())]
        assert simulate_words(ntk, pats, mask) == naive_simulate(ntk, pats, mask)

    def test_program_cache_follows_appends(self):
        ntk = Aig()
        a, b = ntk.create_pi(), ntk.create_pi()
        g1 = ntk.create_and(a, b)
        ntk.create_po(g1)
        v1 = ntk.simulate_patterns([0b01, 0b11], 0b11)
        assert v1[g1 >> 1] == 0b01
        # grow the network after the program was compiled
        g2 = ntk.create_and(a, lit_not(b))
        ntk.create_po(g2)
        v2 = ntk.simulate_patterns([0b01, 0b11], 0b11)
        assert v2[g2 >> 1] == 0b00
        assert v2[g1 >> 1] == 0b01

    def test_pattern_count_validated(self):
        ntk = Aig()
        ntk.create_pi()
        ntk.create_pi()
        with pytest.raises(ValueError):
            ntk.simulate_patterns([1], 1)


class TestPatternPool:
    def test_add_pattern_appends_column(self):
        pool = PatternPool(3, n_patterns=4, seed=9)
        words_before = list(pool.words)
        pool.add_pattern([True, False, True])
        assert pool.n_patterns == 5
        for i, w in enumerate(pool.words):
            assert w & 0b1111 == words_before[i]
        assert pool.pattern(4) == [True, False, True]

    def test_length_validated(self):
        pool = PatternPool(2)
        with pytest.raises(ValueError):
            pool.add_pattern([True])


class TestSimEngine:
    def test_signatures_match_naive(self):
        ntk = random_mixed_network(3)
        pool = PatternPool(ntk.num_pis(), n_patterns=128, seed=2)
        engine = SimEngine(ntk, pool)
        assert engine.signatures() == naive_simulate(ntk, pool.words, pool.mask)

    def test_pattern_incremental_refresh(self):
        ntk = random_mixed_network(4)
        pool = PatternPool(ntk.num_pis(), n_patterns=32, seed=3)
        engine = SimEngine(ntk, pool)
        engine.refresh()
        rng = random.Random(17)
        for _ in range(5):
            pool.add_pattern([bool(rng.random() < 0.5)
                              for _ in range(ntk.num_pis())])
        assert engine.signatures() == naive_simulate(ntk, pool.words, pool.mask)

    def test_node_incremental_refresh(self):
        ntk = random_mixed_network(5, n_gates=10)
        pool = PatternPool(ntk.num_pis(), n_patterns=64, seed=4)
        engine = SimEngine(ntk, pool)
        engine.refresh()
        # grow the network: the dirty suffix must be simulated on demand
        a = ntk.pis[0] << 1
        b = ntk.pis[1] << 1
        g = ntk.create_maj(a, lit_not(b), ntk.create_xor(a, b))
        assert engine.signatures() == naive_simulate(ntk, pool.words, pool.mask)
        assert engine.node_signature(g >> 1) == naive_simulate(
            ntk, pool.words, pool.mask)[g >> 1]

    def test_both_dimensions_grow(self):
        ntk = random_mixed_network(6, n_gates=8)
        pool = PatternPool(ntk.num_pis(), n_patterns=16, seed=5)
        engine = SimEngine(ntk, pool)
        engine.refresh()
        pool.add_pattern([True] * ntk.num_pis())
        ntk.create_and(ntk.pis[0] << 1, ntk.pis[1] << 1)
        assert engine.signatures() == naive_simulate(ntk, pool.words, pool.mask)

    def test_literal_signature_applies_complement(self):
        ntk = random_mixed_network(7, n_gates=6)
        pool = PatternPool(ntk.num_pis(), n_patterns=32, seed=6)
        engine = SimEngine(ntk, pool)
        node = next(ntk.gates())
        assert engine.literal_signature(node << 1) == engine.node_signature(node)
        assert engine.literal_signature((node << 1) | 1) == \
            engine.node_signature(node) ^ pool.mask

    def test_pool_pi_mismatch_rejected(self):
        ntk = random_mixed_network(8)
        with pytest.raises(ValueError):
            SimEngine(ntk, PatternPool(ntk.num_pis() + 1))
