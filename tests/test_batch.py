"""Tests for the batch layer: suites, the parallel runner, the result store."""

import json
import multiprocessing

import pytest

from repro.batch import (
    BatchRunner,
    ResultStore,
    Suite,
    SuiteEntry,
    available_suites,
    get_suite,
    state_fingerprint,
)
from repro.circuits import ALL_BENCHMARKS, build
from repro.flow import FlowContext, FlowError, FlowRunner
from repro.networks import Aig

FLOW = "b; gm -k 4; b"
MINI = ["ctrl", "dec", "int2float"]

_FORK = multiprocessing.get_start_method() == "fork"


# ---------------------------------------------------------------------- #
# suites                                                                  #
# ---------------------------------------------------------------------- #

class TestSuites:
    def test_builtin_registry(self):
        suites = available_suites()
        assert {"epfl-arithmetic", "epfl-control", "epfl-all",
                "epfl-mini"} <= set(suites)
        assert len(suites["epfl-all"]) == 20
        assert suites["epfl-all"].names() == ALL_BENCHMARKS

    def test_wordlevel_family_builds(self):
        suite = get_suite("wordlevel-adders")
        ntks = suite.build_all()
        assert list(ntks) == ["adder-w4", "adder-w8", "adder-w16", "adder-w24"]
        # generated entries pin their own size: scale must not matter
        assert ntks["adder-w4"].num_pis() == 8
        assert suite.entries[0].build("medium").num_pis() == 8

    def test_entry_scale_override(self):
        entry = SuiteEntry(name="x", circuit="ctrl", scale="tiny")
        assert entry.build("medium").num_gates() == build("ctrl", "tiny").num_gates()

    def test_comma_separated_adhoc(self):
        suite = get_suite("ctrl,dec")
        assert suite.names() == ["ctrl", "dec"]

    def test_unknown_suite(self):
        with pytest.raises(ValueError, match="unknown suite"):
            get_suite("not-a-suite")

    def test_manifest_json(self, tmp_path):
        path = tmp_path / "mine.json"
        path.write_text(json.dumps({
            "name": "mine", "scale": "tiny",
            "circuits": ["ctrl", {"builder": "adder", "width": 5,
                                  "name": "adder5"}],
        }))
        suite = get_suite(str(path))
        assert suite.name == "mine" and suite.scale == "tiny"
        assert suite.names() == ["ctrl", "adder5"]
        assert suite.entries[1].build("small").num_pis() == 10

    def test_manifest_toml(self, tmp_path):
        path = tmp_path / "mine.toml"
        path.write_text(
            'name = "toml-suite"\nscale = "tiny"\n'
            'circuits = ["dec", { builder = "square", width = 4 }]\n')
        suite = Suite.from_file(path)
        assert suite.names() == ["dec", "square-width4"]
        assert len(suite.build_all()) == 2

    def test_manifest_rejects_bad_entries(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"circuits": [{"name": "x"}]}))
        with pytest.raises(ValueError, match="exactly one"):
            Suite.from_file(path)
        path.write_text(json.dumps({"circuits": []}))
        with pytest.raises(ValueError, match="no circuits"):
            Suite.from_file(path)

    def test_manifest_resolves_aag_relative(self, tmp_path):
        from repro.io import write_aag

        (tmp_path / "c.aag").write_text(write_aag(build("dec", "tiny")))
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"circuits": ["c.aag"], "scale": "tiny"}))
        suite = Suite.from_file(path)
        assert suite.entries[0].build("tiny").num_pis() == 5


# ---------------------------------------------------------------------- #
# the runner                                                              #
# ---------------------------------------------------------------------- #

class TestBatchRunner:
    def test_sequential_matches_run_many(self):
        ctx = FlowContext()
        expected = FlowRunner(FlowContext()).run_many(MINI, FLOW, scale="tiny")
        batch = BatchRunner(jobs=1, context=ctx).run(MINI, FLOW, scale="tiny")
        assert [o.name for o in batch.outcomes] == MINI
        for outcome in batch.outcomes:
            res = expected[outcome.name]
            assert outcome.ok and outcome.cost == res.cost
            assert outcome.fingerprint == state_fingerprint(res.network)
            assert outcome.result is not None     # in-process keeps FlowResults

    @pytest.mark.skipif(not _FORK, reason="process-pool test needs fork")
    def test_parallel_bit_identical(self):
        seq = BatchRunner(jobs=1).run(MINI, FLOW, scale="tiny")
        par = BatchRunner(jobs=2).run(MINI, FLOW, scale="tiny")
        assert [o.name for o in par.outcomes] == MINI   # deterministic order
        assert [(o.name, o.cost, o.fingerprint) for o in par.outcomes] == \
               [(o.name, o.cost, o.fingerprint) for o in seq.outcomes]
        assert all(o.worker for o in par.outcomes)

    @pytest.mark.skipif(not _FORK, reason="process-pool test needs fork")
    def test_parallel_shm_transfer_bit_identical(self):
        """The shared-memory path reproduces the sequential run exactly."""
        seq = BatchRunner(jobs=1).run(MINI, FLOW, scale="tiny")
        shm = BatchRunner(jobs=2, transfer="shm").run(MINI, FLOW, scale="tiny")
        assert shm.transfer == "shm"
        assert [(o.name, o.cost, o.fingerprint) for o in shm.outcomes] == \
               [(o.name, o.cost, o.fingerprint) for o in seq.outcomes]
        # result networks ride back as flat buffers, rebuilt in the parent
        assert all(o.network is not None for o in shm.outcomes)
        assert all(o.packed is None for o in shm.outcomes)

    @pytest.mark.skipif(not _FORK, reason="process-pool test needs fork")
    def test_parallel_pickle_transfer_still_works(self):
        pick = BatchRunner(jobs=2, transfer="pickle").run(MINI, FLOW,
                                                          scale="tiny")
        auto = BatchRunner(jobs=2).run(MINI, FLOW, scale="tiny")
        assert [(o.name, o.cost, o.fingerprint) for o in pick.outcomes] == \
               [(o.name, o.cost, o.fingerprint) for o in auto.outcomes]

    def test_transfer_mode_validated(self):
        with pytest.raises(ValueError):
            BatchRunner(transfer="carrier-pigeon")

    def test_network_objects_and_dedup(self):
        ntk = build("dec", "tiny")
        batch = BatchRunner().run(["ctrl", ntk, "ctrl"], "b", scale="tiny")
        assert [o.name for o in batch.outcomes] == ["ctrl", "circuit1", "ctrl#2"]

    def test_suite_default_scale(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"circuits": ["dec"], "scale": "tiny"}))
        batch = BatchRunner().run(get_suite(str(path)), "b")
        assert batch.scale == "tiny"
        assert batch.outcomes[0].before == (
            build("dec", "tiny").num_gates(), build("dec", "tiny").depth())

    def test_run_many_parallel_results(self):
        out = FlowRunner().run_many(MINI, FLOW, scale="tiny", jobs=2)
        seq = FlowRunner().run_many(MINI, FLOW, scale="tiny")
        assert list(out) == list(seq)
        for name in out:
            assert out[name].cost == seq[name].cost
            assert len(out[name].metrics) == len(seq[name].metrics)
            assert out[name].network.num_gates() == seq[name].network.num_gates()

    def test_progress_callback(self):
        seen = []
        BatchRunner(progress=lambda done, total, o: seen.append((done, total, o.name))
                    ).run(["ctrl", "dec"], "b", scale="tiny")
        assert seen == [(1, 2, "ctrl"), (2, 2, "dec")]

    def test_verify_flag(self):
        batch = BatchRunner(verify=True).run(["dec"], "b", scale="tiny")
        assert batch.outcomes[0].ok

    def test_run_many_honors_checkpoint_flag(self):
        runner = FlowRunner(FlowContext(), checkpoint=True)
        runner.run_many(["dec"], "b", scale="tiny")
        assert runner.ctx.checkpoints

    def test_map_orders_results(self):
        runner = BatchRunner(jobs=2 if _FORK else 1)
        assert runner.map(list(range(5)), _double) == [0, 2, 4, 6, 8]

    def test_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            BatchRunner(jobs=0)


def _double(task, ctx):
    return task * 2


# ---------------------------------------------------------------------- #
# failure isolation                                                       #
# ---------------------------------------------------------------------- #

class _ExplodingAig(Aig):
    """An AIG whose depth() raises — any flow over it fails mid-run."""

    def depth(self):
        raise RuntimeError("injected batch failure")


def _poisoned_circuit():
    ntk = build("dec", "tiny")
    ntk.__class__ = _ExplodingAig
    ntk.name = "poisoned"
    return ntk


class TestFailureIsolation:
    def _check(self, batch):
        assert [o.name for o in batch.outcomes] == ["ctrl", "poisoned", "dec"]
        ok = batch.by_name()
        assert ok["ctrl"].ok and ok["dec"].ok
        bad = ok["poisoned"]
        assert not bad.ok and "injected batch failure" in bad.error
        assert "RuntimeError" in bad.traceback
        assert batch.failures == [bad]

    def test_sequential_run_completes_others(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        batch = BatchRunner(jobs=1).run(
            ["ctrl", _poisoned_circuit(), "dec"], FLOW, scale="tiny",
            store=store)
        self._check(batch)
        # the store recorded the failure AND the completed circuits
        run = store.find_run(batch.run_id)
        assert run.failures == ["poisoned"]
        assert run.results["poisoned"]["error"].startswith("RuntimeError")
        assert run.results["ctrl"]["status"] == "ok"
        assert run.results["dec"]["fingerprint"]

    @pytest.mark.skipif(not _FORK, reason="process-pool test needs fork")
    def test_parallel_run_completes_others(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        batch = BatchRunner(jobs=2).run(
            ["ctrl", _poisoned_circuit(), "dec"], FLOW, scale="tiny",
            store=store)
        self._check(batch)
        assert store.find_run(batch.run_id).failures == ["poisoned"]

    def test_run_many_still_raises(self):
        with pytest.raises(FlowError, match="injected batch failure"):
            FlowRunner().run_many([_poisoned_circuit()], "b", scale="tiny")


# ---------------------------------------------------------------------- #
# the result store                                                        #
# ---------------------------------------------------------------------- #

class TestResultStore:
    def _two_runs(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        runner = BatchRunner()
        a = runner.run(["ctrl", "dec"], FLOW, scale="tiny", store=store)
        b = runner.run(["ctrl", "dec"], FLOW, scale="tiny", store=store)
        return store, a, b

    def test_append_and_read_back(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        runs = store.runs()
        assert [r.run_id for r in runs] == [a.run_id, b.run_id]
        assert runs[0].flow == a.flow and runs[0].header["git_rev"]
        assert set(runs[1].results) == {"ctrl", "dec"}
        assert runs[1].results["ctrl"]["size"] == a.outcomes[0].cost[0]

    def test_find_run_prefix_and_latest(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        assert store.find_run(a.run_id[:12]).run_id in (a.run_id, b.run_id)
        assert store.find_run("latest").run_id == b.run_id
        assert store.find_run("latest", exclude=b.run_id).run_id == a.run_id
        # a date-like prefix must not resolve to the excluded (fresh) run
        shared = b.run_id[:10]
        assert a.run_id.startswith(shared)
        assert store.find_run(shared, exclude=b.run_id).run_id == a.run_id
        with pytest.raises(ValueError, match="no run"):
            store.find_run("r1999")

    def test_compare_identical_runs(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        cmp = store.compare(b.run_id, a.run_id)
        assert cmp.ok and not cmp.regressions
        assert "zero regressions" in cmp.format()

    def test_compare_flags_size_regression(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        worse = BatchRunner().run(["ctrl", "dec"], FLOW, scale="tiny")
        worse.outcomes[0].cost = (worse.outcomes[0].cost[0] + 5,
                                  worse.outcomes[0].cost[1])
        rid = store.record(worse)
        cmp = store.compare(rid, a.run_id)
        assert not cmp.ok
        assert [r["circuit"] for r in cmp.regressions] == ["ctrl"]
        assert "REGRESSION" in cmp.format()

    def test_compare_improvement_is_not_regression(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        better = BatchRunner().run(["ctrl", "dec"], FLOW, scale="tiny")
        # a genuine improvement changes both cost and structure
        better.outcomes[0].cost = (better.outcomes[0].cost[0] - 5,
                                   better.outcomes[0].cost[1])
        better.outcomes[0].fingerprint = "0123456789abcdef"
        rid = store.record(better)
        cmp = store.compare(rid, a.run_id)
        assert cmp.ok, cmp.regressions

    def test_compare_flags_divergence(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        diverged = BatchRunner().run(["ctrl", "dec"], FLOW, scale="tiny")
        diverged.outcomes[1].fingerprint = "deadbeefdeadbeef"
        rid = store.record(diverged)
        cmp = store.compare(rid, a.run_id)
        assert [r["circuit"] for r in cmp.regressions] == ["dec"]
        assert cmp.regressions[0]["diverged"]
        assert "DIVERGED" in cmp.format()

    def test_compare_flags_new_failure(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        failed = BatchRunner().run(["ctrl", _named_poisoned("dec")], FLOW,
                                   scale="tiny")
        rid = store.record(failed)
        cmp = store.compare(rid, a.run_id)
        assert [r["circuit"] for r in cmp.regressions] == ["dec"]

    def test_speedup_reported(self, tmp_path):
        store, a, b = self._two_runs(tmp_path)
        cmp = store.compare(b.run_id, a.run_id)
        assert cmp.speedup > 0
        assert "speedup" in cmp.format()


def _named_poisoned(name):
    ntk = _poisoned_circuit()
    ntk.name = name
    return ntk
