"""Integration tests for the experiment drivers (tiny scale)."""

import pytest

from repro.experiments import (
    demo_circuit,
    format_fig1,
    format_fig2,
    format_fig6,
    format_results,
    format_table2,
    geomean,
    improvement,
    merge_ablation,
    ratio_sweep,
    representation_ablation,
    run_circuit,
    run_fig1,
    run_fig2,
    run_fig6,
    run_table2,
    strategy_ablation,
    summarize,
    summarize_fig6,
)
from repro.circuits import build


class TestCommon:
    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([]) == 0.0
        assert geomean([5]) == pytest.approx(5.0)

    def test_geomean_skips_nonpositive(self):
        assert geomean([0, 10, 10]) == pytest.approx(10.0)

    def test_improvement(self):
        assert improvement(100, 80) == pytest.approx(20.0)
        assert improvement(100, 120) == pytest.approx(-20.0)
        assert improvement(0, 10) == 0.0

    def test_format_table(self):
        from repro.experiments import format_table

        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text


class TestFig1:
    def test_runs_and_diverges(self):
        rows = run_fig1(circuit="adder", scale="tiny")
        assert set(rows) == {"AIG", "XAG", "MIG", "XMG"}
        text = format_fig1(rows, "adder")
        assert "XMG" in text
        # XOR-capable representations shrink the adder
        assert rows["XMG"].gates < rows["AIG"].gates

    def test_subset_of_reps(self):
        rows = run_fig1(circuit="adder", scale="tiny", reps=["AIG", "XMG"])
        assert set(rows) == {"AIG", "XMG"}


class TestFig2:
    def test_demo_function(self):
        ntk = demo_circuit()
        for a in range(4):
            for b in range(4):
                bits = [bool(a & 1), bool(a & 2), bool(b & 1), bool(b & 2)]
                assert ntk.simulate(bits)[0] == ((a + b) > 0)

    def test_flow_shape(self):
        rows = run_fig2()
        assert rows["optimized"].nodes <= rows["original"].nodes
        assert rows["mch"].choices > 0
        assert "MCH" in format_fig2(rows)


class TestTable1:
    def test_single_circuit_all_configs(self):
        rows = run_circuit(build("int2float", "tiny"))
        assert set(rows) == {"baseline", "dch", "dch_area", "mch_balanced",
                             "mch_delay", "mch_area"}
        for r in rows.values():
            assert r.area > 0 and r.delay > 0 and r.seconds >= 0

    def test_config_subset(self):
        rows = run_circuit(build("ctrl", "tiny"), configs=["baseline", "mch_area"])
        assert set(rows) == {"baseline", "mch_area"}

    def test_summary_and_format(self):
        results = {"ctrl": run_circuit(build("ctrl", "tiny"),
                                       configs=["baseline", "mch_area"])}
        s = summarize(results)
        assert s["baseline"]["area_gain_%"] == pytest.approx(0.0)
        text = format_results(results)
        assert "GEOMEAN" in text and "ctrl" in text


class TestTable2:
    def test_protocol_shape(self):
        rows = run_table2(names=["square"], scale="tiny")
        r = rows["square"]
        # MCH must never lose to the plain remap of the strashed network
        assert r.mch_luts <= r.strash_luts
        assert "square" in format_table2(rows)


class TestFig6:
    def test_graphmap_gains(self):
        rows = run_fig6(names=["adder", "square"], scale="tiny")
        for name, r in rows.items():
            assert r.mch_nodes <= r.base_nodes * 1.05, name
        s = summarize_fig6(rows)
        assert set(s) == {"graph_node_gain_%", "graph_level_gain_%",
                          "lut_node_gain_%", "lut_level_gain_%"}
        assert "Geomean" in format_fig6(rows)


class TestAblations:
    def test_ratio_sweep(self):
        rows = ratio_sweep(circuit="adder", scale="tiny", ratios=(0.5, 1.5))
        assert len(rows) == 2
        assert rows[0]["choices"] >= rows[1]["choices"]

    def test_merge_ablation(self):
        rows = merge_ablation(circuit="adder", scale="tiny", cut_limits=(8,))
        assert rows[0]["merged.depth"] <= rows[0]["unmerged.depth"]

    def test_representation_ablation(self):
        rows = representation_ablation(circuit="adder", scale="tiny")
        labels = {r["reps"] for r in rows}
        assert "AIG" in labels and "XMG" in labels

    def test_strategy_ablation(self):
        rows = strategy_ablation(circuit="adder", scale="tiny")
        assert len(rows) == 3
