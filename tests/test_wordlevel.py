"""Tests for the word-level datapath builders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.wordlevel import (
    add_words,
    constant_word,
    equal_words,
    less_than,
    multiply_words,
    mux_word,
    negate_word,
    popcount,
    priority_encoder,
    shift_left,
    shift_right,
    sub_words,
)
from repro.networks import Aig, Xmg


def evaluate(ntk, out_lits, assignment):
    for l in out_lits:
        ntk.create_po(l)
    res = ntk.simulate(assignment)
    # remove the POs we just added so the helper can be reused
    ntk._pos = ntk._pos[: len(ntk._pos) - len(out_lits)]
    ntk._po_names = ntk._po_names[: len(ntk._po_names) - len(out_lits)]
    return sum(int(b) << i for i, b in enumerate(res))


def bits_of(value, width):
    return [bool((value >> i) & 1) for i in range(width)]


class TestWordOps:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_add(self, x, y):
        ntk = Aig()
        a = [ntk.create_pi() for _ in range(8)]
        b = [ntk.create_pi() for _ in range(8)]
        out = add_words(ntk, a, b)
        assert evaluate(ntk, out, bits_of(x, 8) + bits_of(y, 8)) == x + y

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_sub_with_borrow_flag(self, x, y):
        ntk = Aig()
        a = [ntk.create_pi() for _ in range(8)]
        b = [ntk.create_pi() for _ in range(8)]
        out = sub_words(ntk, a, b)
        got = evaluate(ntk, out[:8], bits_of(x, 8) + bits_of(y, 8))
        flag = evaluate(ntk, [out[8]], bits_of(x, 8) + bits_of(y, 8))
        assert got == (x - y) % 256
        assert flag == (1 if x >= y else 0)

    @given(st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_negate(self, x):
        ntk = Aig()
        a = [ntk.create_pi() for _ in range(8)]
        out = negate_word(ntk, a)
        assert evaluate(ntk, out, bits_of(x, 8)) == (-x) % 256

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_multiply(self, x, y):
        ntk = Aig()
        a = [ntk.create_pi() for _ in range(6)]
        b = [ntk.create_pi() for _ in range(6)]
        out = multiply_words(ntk, a, b)
        assert evaluate(ntk, out, bits_of(x, 6) + bits_of(y, 6)) == x * y

    @given(st.integers(0, 127), st.integers(0, 127))
    @settings(max_examples=30, deadline=None)
    def test_less_than_and_equal(self, x, y):
        ntk = Aig()
        a = [ntk.create_pi() for _ in range(7)]
        b = [ntk.create_pi() for _ in range(7)]
        lt = less_than(ntk, a, b)
        eq = equal_words(ntk, a, b)
        stim = bits_of(x, 7) + bits_of(y, 7)
        assert evaluate(ntk, [lt], stim) == (1 if x < y else 0)
        assert evaluate(ntk, [eq], stim) == (1 if x == y else 0)

    @given(st.integers(0, 255), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_shifts(self, d, s):
        ntk = Aig()
        data = [ntk.create_pi() for _ in range(8)]
        amt = [ntk.create_pi() for _ in range(3)]
        left = shift_left(ntk, data, amt)
        right = shift_right(ntk, data, amt)
        stim = bits_of(d, 8) + bits_of(s, 3)
        assert evaluate(ntk, left, stim) == (d << s) & 0xFF
        assert evaluate(ntk, right, stim) == d >> s

    def test_mux_word(self):
        ntk = Aig()
        s = ntk.create_pi()
        hi = [ntk.create_pi() for _ in range(4)]
        lo = [ntk.create_pi() for _ in range(4)]
        out = mux_word(ntk, s, hi, lo)
        assert evaluate(ntk, out, [True] + bits_of(0xA, 4) + bits_of(0x5, 4)) == 0xA
        assert evaluate(ntk, out, [False] + bits_of(0xA, 4) + bits_of(0x5, 4)) == 0x5

    def test_constant_word(self):
        ntk = Aig()
        w = constant_word(ntk, 0b1010, 4)
        assert w == [ntk.const0, ntk.const1, ntk.const0, ntk.const1]

    def test_width_mismatch(self):
        ntk = Aig()
        a = [ntk.create_pi() for _ in range(3)]
        b = [ntk.create_pi() for _ in range(4)]
        with pytest.raises(ValueError):
            add_words(ntk, a, b)

    @given(st.integers(1, 12), st.data())
    @settings(max_examples=30, deadline=None)
    def test_popcount_random(self, n, data):
        bits = [data.draw(st.booleans()) for _ in range(n)]
        ntk = Aig()
        xs = [ntk.create_pi() for _ in range(n)]
        cnt = popcount(ntk, xs)
        assert evaluate(ntk, cnt, bits) == sum(bits)

    def test_priority_encoder_in_xmg(self):
        # builders must work in any representation
        ntk = Xmg()
        req = [ntk.create_pi() for _ in range(5)]
        index, valid = priority_encoder(ntk, req)
        stim = [False, True, False, True, False]
        assert evaluate(ntk, index, stim) == 3
        assert evaluate(ntk, [valid], stim) == 1
