"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["fly"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "adder", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "adder" in out

    def test_suite_lists_manifests(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "epfl-all" in out and "wordlevel-adders" in out

    def test_suite_shows_members(self, capsys):
        assert main(["suite", "epfl-all", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "voter" in out and "mem_ctrl" in out

    def test_suite_unknown(self):
        with pytest.raises(SystemExit, match="unknown suite"):
            main(["suite", "no-such-suite"])

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["info", "not-a-circuit"])

    def test_optimize_with_verify(self, capsys):
        assert main(["optimize", "ctrl", "--scale", "tiny", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "cec: ok" in out

    def test_map_luts_plain(self, capsys, tmp_path):
        out_file = tmp_path / "out.blif"
        assert main(["map-luts", "int2float", "--scale", "tiny",
                     "-o", str(out_file)]) == 0
        assert "LUTs" in capsys.readouterr().out
        assert out_file.read_text().startswith(".model")

    def test_map_luts_mch_verified(self, capsys):
        assert main(["map-luts", "adder", "--scale", "tiny", "--mch",
                     "--reps", "xmg,xag", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "choice network" in out and "cec: ok" in out

    def test_map_asic_with_verilog(self, capsys, tmp_path):
        out_file = tmp_path / "out.v"
        assert main(["map-asic", "router", "--scale", "tiny", "--verify",
                     "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "cells" in out and "cec: ok" in out
        assert "module top" in out_file.read_text()

    def test_optimize_writes_aiger(self, capsys, tmp_path):
        out_file = tmp_path / "opt.aag"
        assert main(["optimize", "dec", "--scale", "tiny",
                     "-o", str(out_file)]) == 0
        from repro.io import read_aag
        from repro.circuits import build
        from repro.sat import cec

        back = read_aag(out_file.read_text())
        assert cec(build("dec", "tiny"), back)

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_aag_input_roundtrip(self, capsys, tmp_path):
        from repro.circuits import build
        from repro.io import write_aag

        path = tmp_path / "c.aag"
        path.write_text(write_aag(build("ctrl", "tiny")))
        assert main(["info", str(path)]) == 0
        assert "gates" in capsys.readouterr().out


class TestRunCommand:
    def test_run_script_with_verify(self, capsys):
        assert main(["run", "adder", "--scale", "tiny",
                     "--script", "b; rf; rs; gm -k 4; b", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "input:" in out and "output:" in out and "cec: ok" in out

    def test_run_named_flow_with_timing(self, capsys):
        assert main(["run", "ctrl", "--scale", "tiny",
                     "--flow", "compress2rs", "--timing"]) == 0
        out = capsys.readouterr().out
        assert "per-pass metrics" in out and "gm" in out

    def test_run_mapping_script_writes_blif(self, capsys, tmp_path):
        out_file = tmp_path / "out.blif"
        assert main(["run", "int2float", "--scale", "tiny",
                     "--script", "b; if -k 4", "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith(".model")

    def test_run_requires_exactly_one_flow_source(self):
        with pytest.raises(SystemExit):
            main(["run", "adder", "--scale", "tiny"])
        with pytest.raises(SystemExit):
            main(["run", "adder", "--scale", "tiny",
                  "--script", "b", "--flow", "compress2rs"])

    def test_run_bad_script_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="unknown pass"):
            main(["run", "adder", "--scale", "tiny", "--script", "warp 9"])

    def test_run_engine_stats(self, capsys):
        assert main(["run", "ctrl", "--scale", "tiny",
                     "--script", "b; gm", "--engine-stats"]) == 0
        out = capsys.readouterr().out
        assert "engine stats" in out and "solver" in out

    def test_passes_command_lists_registry(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        assert "gm" in out and "balance" in out

    def test_optimize_timing_flag(self, capsys):
        assert main(["optimize", "ctrl", "--scale", "tiny", "--timing"]) == 0
        assert "per-pass metrics" in capsys.readouterr().out

    def test_map_asic_engine_stats(self, capsys):
        assert main(["map-asic", "ctrl", "--scale", "tiny",
                     "--engine-stats"]) == 0
        out = capsys.readouterr().out
        assert "cells" in out and "engine stats" in out

    def test_passes_links_docs(self, capsys):
        assert main(["passes"]) == 0
        assert "docs/flow-dsl.md" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_runs_suite_with_store(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        assert main(["batch", "ctrl,dec", "--script", "b; gm -k 4",
                     "--scale", "tiny", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "ctrl" in out and "dec" in out and "recorded run" in out
        assert store.exists()

    def test_batch_parallel_compare_clean(self, capsys, tmp_path):
        store = tmp_path / "store.jsonl"
        args = ["batch", "ctrl,dec", "--script", "b", "--scale", "tiny",
                "--store", str(store), "--quiet"]
        assert main(args) == 0
        assert main(args + ["--jobs", "2", "--compare-to", "latest"]) == 0
        out = capsys.readouterr().out
        assert "zero regressions" in out and "speedup" in out

    def test_batch_named_suite(self, capsys):
        assert main(["batch", "epfl-mini", "--flow", "compress2rs",
                     "--scale", "tiny", "--quiet"]) == 0
        assert "epfl-mini" in capsys.readouterr().out

    def test_batch_requires_one_flow_source(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["batch", "ctrl", "--scale", "tiny"])

    def test_batch_unknown_suite(self):
        with pytest.raises(SystemExit, match="unknown suite"):
            main(["batch", "nope-suite", "--script", "b"])

    def test_batch_failure_sets_exit_code(self, capsys, tmp_path):
        aag = tmp_path / "broken.aag"
        aag.write_text("not an aiger file\n")
        manifest = tmp_path / "s.json"
        manifest.write_text(
            '{"circuits": ["ctrl", "%s"], "scale": "tiny"}' % aag)
        assert main(["batch", str(manifest), "--script", "b",
                     "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "ERROR" in out

    def test_batch_compare_needs_store(self):
        with pytest.raises(SystemExit, match="--compare-to needs --store"):
            main(["batch", "ctrl", "--script", "b", "--scale", "tiny",
                  "--compare-to", "latest", "--quiet"])
