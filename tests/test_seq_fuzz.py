"""Differential sequential harness: three independent engines must agree.

For hundreds of randomized register-bearing networks, bounded equivalence
is decided three ways that share no code path beyond the network core:

1. ``bmc_cec`` — incremental time-frame SAT on one persistent solver;
2. combinational CEC over ``unroll(..)`` — brute-force time unrolling into
   a register-free network checked by the ordinary comb engine;
3. exhaustive multi-frame bit-parallel simulation — every input trace of
   the bounded window packed into one machine word sweep.

The window is kept small enough (2 real PIs x 3 frames = 64 traces) that
simulation is *exhaustive*, so all three verdicts are exact and must match
bit for bit.  k-induction joins as a one-sided check: a ``True`` verdict is
an unbounded proof, so every bounded engine must also report ``True``.
"""

import random

import pytest

from repro.networks import Aig
from repro.sat import cec
from repro.seq import (
    bmc_cec,
    k_induction_cec,
    register_sweep,
    retime_forward,
    seq_cec,
    simulate_sequential,
    unroll,
)

N_REAL_PIS = 2
N_REGS = 3
N_GATES = 12
DEPTH = 3                                   # 2**(2*3) = 64 exhaustive traces
SEEDS_PER_CHUNK = 25
N_CHUNKS = 8                                # 200 randomized networks total


def random_seq_network(rng: random.Random) -> Aig:
    ntk = Aig()
    kinds = ["pi"] * N_REAL_PIS + ["ro"] * N_REGS
    rng.shuffle(kinds)
    lits = [ntk.create_pi() if k == "pi"
            else ntk.create_ro(init=rng.randint(0, 1)) for k in kinds]
    for _ in range(N_GATES):
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lits.append(ntk.create_and(a, b))
    for _ in range(2):
        ntk.create_po(rng.choice(lits) ^ rng.randint(0, 1))
    for _ in range(N_REGS):
        ntk.create_ri(rng.choice(lits) ^ rng.randint(0, 1))
    return ntk


def mutate(ntk: Aig, rng: random.Random) -> Aig:
    """A structural near-copy: flipped init, complemented RI, or comb tweak."""
    dst = Aig()
    mapping = {0: 0}
    names = ntk.pi_names
    ro_of = {n: i for i, (n, _, _) in enumerate(ntk.registers)}
    flip = rng.randrange(ntk.num_registers() + ntk.num_pos())
    for j, n in enumerate(ntk.pis):
        if n in ro_of:
            i = ro_of[n]
            init = ntk.registers[i][2] ^ (1 if flip == i else 0)
            mapping[n] = dst.create_ro(names[j], init)
        else:
            mapping[n] = dst.create_pi(names[j])
    for g in ntk.gates():
        fis = tuple(mapping[f >> 1] ^ (f & 1) for f in ntk.fanins(g))
        mapping[g] = dst.create_gate(ntk.node_type(g), fis)
    for j, p in enumerate(ntk.pos):
        phase = 1 if flip == ntk.num_registers() + j else 0
        dst.create_po(mapping[p >> 1] ^ (p & 1) ^ phase, ntk.po_names[j])
    for _, ri, _ in ntk.registers:
        dst.create_ri(mapping[ri >> 1] ^ (ri & 1))
    return dst


def exhaustive_stimulus():
    """All ``2**(N_REAL_PIS * DEPTH)`` traces packed into one word sweep."""
    n_traces = 1 << (N_REAL_PIS * DEPTH)
    stim = []
    for t in range(DEPTH):
        frame = []
        for i in range(N_REAL_PIS):
            bit = t * N_REAL_PIS + i
            frame.append(sum(((j >> bit) & 1) << j for j in range(n_traces)))
        stim.append(frame)
    return stim, (1 << n_traces) - 1


STIM, MASK = exhaustive_stimulus()


def sim_verdict(a: Aig, b: Aig) -> bool:
    """Exhaustive bounded equivalence by bit-parallel simulation."""
    return simulate_sequential(a, STIM, MASK) == simulate_sequential(b, STIM, MASK)


def unroll_verdict(a: Aig, b: Aig) -> bool:
    """Bounded equivalence via brute-force unrolling + combinational CEC."""
    return bool(cec(unroll(a, DEPTH), unroll(b, DEPTH)))


@pytest.mark.parametrize("chunk", range(N_CHUNKS))
def test_three_way_differential(chunk):
    base = chunk * SEEDS_PER_CHUNK
    for seed in range(base, base + SEEDS_PER_CHUNK):
        rng = random.Random(seed)
        a = random_seq_network(rng)
        # a spread of relationships: identical rebuild, near-miss mutation,
        # or an unrelated network with the same interface
        relation = seed % 3
        if relation == 0:
            b = mutate(a, rng)
        elif relation == 1:
            b = random_seq_network(random.Random(seed + 10_000))
        else:
            b = a.cleanup()                  # behaviourally identical
        bmc = bmc_cec(a, b, DEPTH)
        assert bmc.equivalent is not None, f"seed {seed}: BMC inconclusive"
        sim = sim_verdict(a, b)
        unrolled = unroll_verdict(a, b)
        assert bmc.equivalent == sim == unrolled, \
            (f"seed {seed}: verdicts disagree — bmc={bmc.equivalent} "
             f"sim={sim} unrolled-cec={unrolled}")
        if bmc.equivalent is False:
            # the trace must actually drive the networks apart
            trace = [[int(v) for v in frame] for frame in bmc.counterexample]
            oa = simulate_sequential(a, trace, 1)
            ob = simulate_sequential(b, trace, 1)
            assert oa[-1] != ob[-1], f"seed {seed}: bogus counterexample"


@pytest.mark.parametrize("chunk", range(4))
def test_k_induction_one_sided_agreement(chunk):
    # an unbounded True must imply bounded True everywhere; a False must
    # carry a trace the bounded engines confirm
    for seed in range(chunk * 10, chunk * 10 + 10):
        rng = random.Random(seed)
        a = random_seq_network(rng)
        b = mutate(a, rng) if seed % 2 else a.cleanup()
        res = k_induction_cec(a, b, max_k=5)
        if res.equivalent is True:
            assert sim_verdict(a, b), f"seed {seed}: induction proof refuted"
            assert bmc_cec(a, b, DEPTH).equivalent is True
        elif res.equivalent is False:
            # the refutation may lie beyond the exhaustive window, but the
            # carried trace must replay to a real divergence
            trace = [[int(v) for v in frame] for frame in res.counterexample]
            oa = simulate_sequential(a, trace, 1)
            ob = simulate_sequential(b, trace, 1)
            assert oa[-1] != ob[-1], f"seed {seed}: bogus refutation"


@pytest.mark.parametrize("seed", range(20))
def test_transforms_preserve_bounded_behaviour(seed):
    # sweep and retime outputs must stay indistinguishable from the input
    # under the exhaustive window
    rng = random.Random(seed)
    a = random_seq_network(rng)
    swept, _ = register_sweep(a)
    assert sim_verdict(a, swept), f"seed {seed}: sweep changed behaviour"
    retimed, _ = retime_forward(a)
    assert sim_verdict(a, retimed), f"seed {seed}: retime changed behaviour"


@pytest.mark.parametrize("seed", range(10))
def test_seq_cec_agrees_with_exhaustive_simulation(seed):
    rng = random.Random(seed)
    a = random_seq_network(rng)
    b = mutate(a, rng)
    res = seq_cec(a, b, max_k=4, depth=DEPTH)
    if res.equivalent is True:
        assert sim_verdict(a, b), \
            f"seed {seed}: seq_cec proved equal but exhaustive sim differs"
    elif res.equivalent is False:
        # refutations can be deeper than the exhaustive window; the trace
        # itself is the witness
        trace = [[int(v) for v in frame] for frame in res.counterexample]
        assert simulate_sequential(a, trace, 1)[-1] \
            != simulate_sequential(b, trace, 1)[-1], f"seed {seed}"
