"""Tests for AIGER / BLIF / Verilog / genlib I/O."""

import pytest

from repro.circuits import build
from repro.io import (
    read_aag,
    read_aig_binary,
    read_blif,
    write_aag,
    write_aig_binary,
    write_blif,
    write_verilog_logic,
    write_verilog_netlist,
)
from repro.mapping import asic_map, lut_map
from repro.networks import Aig
from repro.sat import cec


class TestAiger:
    @pytest.mark.parametrize("name", ["adder", "router", "dec"])
    def test_aag_roundtrip(self, name):
        ntk = build(name, "tiny")
        text = write_aag(ntk)
        back = read_aag(text)
        assert back.num_pis() == ntk.num_pis()
        assert back.num_pos() == ntk.num_pos()
        assert cec(ntk, back)

    def test_aag_preserves_names(self):
        ntk = build("adder", "tiny")
        back = read_aag(write_aag(ntk))
        assert back.pi_names == ntk.pi_names
        assert back.po_names == ntk.po_names

    @pytest.mark.parametrize("name", ["adder", "int2float"])
    def test_binary_roundtrip(self, name):
        ntk = build(name, "tiny")
        data = write_aig_binary(ntk)
        back = read_aig_binary(data)
        assert cec(ntk, back)

    def test_reads_latches(self):
        # latches are first-class now; only malformed headers are rejected
        ntk = read_aag("aag 1 0 1 0 0\n2 2\n")
        assert ntk.num_registers() == 1
        with pytest.raises(ValueError, match="malformed AIGER header"):
            read_aag("aag 0 0 1 0 0\n2 2\n")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            read_aag("hello world\n")

    def test_constants_in_aag(self):
        ntk = Aig()
        a = ntk.create_pi()
        ntk.create_po(ntk.const1)
        ntk.create_po(a)
        back = read_aag(write_aag(ntk))
        assert cec(ntk, back)


class TestBlif:
    @pytest.mark.parametrize("name", ["adder", "ctrl"])
    def test_lut_roundtrip(self, name):
        ntk = build(name, "tiny")
        lut = lut_map(ntk, k=4)
        text = write_blif(lut)
        back = read_blif(text, k=4)
        assert back.num_pis() == lut.num_pis()
        assert back.num_pos() == lut.num_pos()
        assert cec(ntk, back.to_logic_network(Aig))

    def test_const_po(self):
        from repro.networks import LutNetwork

        lut = LutNetwork(4)
        lut.create_pi()
        lut.create_po(0, phase=False)  # constant-0 PO
        text = write_blif(lut)
        back = read_blif(text)
        assert back.simulate([True]) == [False]
        assert back.simulate([False]) == [False]

    def test_rejects_unknown_construct(self):
        with pytest.raises(ValueError):
            read_blif(".model x\n.latch a b\n.end\n")


class TestVerilog:
    def test_netlist_writer_wellformed(self):
        ntk = build("adder", "tiny")
        nl = asic_map(ntk)
        text = write_verilog_netlist(nl)
        assert text.startswith("module top") and text.count("endmodule") == 1
        for cell_name in nl.cell_histogram():
            assert cell_name in text

    def test_logic_writer_wellformed(self):
        from repro.networks import Xmg, convert

        ntk = convert(build("adder", "tiny"), Xmg)
        text = write_verilog_logic(ntk)
        assert "module top" in text and "endmodule" in text
        assert text.count("assign") >= ntk.num_gates()

    def test_name_sanitization(self):
        ntk = Aig()
        a = ntk.create_pi("a[0]")
        ntk.create_po(a, "out.x")
        text = write_verilog_logic(ntk)
        assert "a[0]" not in text.split("(")[1]  # port list sanitized
