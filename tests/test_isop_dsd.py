"""Tests for ISOP computation and DSD decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truth.dsd import decompose, dsd_depth, dsd_num_gates
from repro.truth.isop import cover_truth_table, cube_literals, isop, num_literals
from repro.truth.truth_table import TruthTable


def eval_dsd(node, complemented, assignment):
    """Reference evaluator for DSD trees."""
    def rec(n):
        if n.kind == "const":
            return n.value
        if n.kind == "var":
            return assignment[n.var_index]
        vals = [rec(ch) ^ c for ch, c in n.children]
        if n.kind == "and":
            return all(vals)
        if n.kind == "or":
            return any(vals)
        if n.kind == "xor":
            return sum(vals) % 2 == 1
        if n.kind == "maj":
            return sum(vals) >= 2
        if n.kind == "mux":
            return vals[1] if vals[0] else vals[2]
        raise AssertionError(n.kind)

    return rec(node) ^ complemented


class TestIsop:
    def test_and(self):
        tt = TruthTable.from_function(2, lambda a, b: a and b)
        cubes = isop(tt)
        assert len(cubes) == 1
        assert cover_truth_table(cubes, 2) == tt

    def test_const0(self):
        assert isop(TruthTable.const(3, False)) == []

    def test_const1(self):
        cubes = isop(TruthTable.const(3, True))
        assert cubes == [(0, 0)]

    def test_xor_needs_two_cubes(self):
        tt = TruthTable.from_function(2, lambda a, b: a != b)
        cubes = isop(tt)
        assert len(cubes) == 2
        assert cover_truth_table(cubes, 2) == tt

    def test_cube_literals(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a and not c)
        cubes = isop(tt)
        assert len(cubes) == 1
        assert sorted(cube_literals(cubes[0])) == [(0, False), (2, True)]

    @given(st.integers(min_value=1, max_value=5), st.data())
    @settings(max_examples=120, deadline=None)
    def test_isop_exact_cover(self, n, data):
        bits = data.draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
        tt = TruthTable(n, bits)
        cubes = isop(tt)
        assert cover_truth_table(cubes, n) == tt

    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_isop_with_dont_cares(self, n, data):
        full = (1 << (1 << n)) - 1
        on = data.draw(st.integers(min_value=0, max_value=full))
        dc = data.draw(st.integers(min_value=0, max_value=full))
        tt = TruthTable(n, on & ~dc)
        dtt = TruthTable(n, dc)
        cubes = isop(tt, dtt)
        cover = cover_truth_table(cubes, n)
        assert (tt.bits & ~cover.bits) == 0
        assert (cover.bits & ~(tt.bits | dtt.bits)) == 0

    def test_num_literals(self):
        tt = TruthTable.from_function(2, lambda a, b: a and b)
        assert num_literals(isop(tt)) == 2


class TestDsd:
    def test_const(self):
        node, c = decompose(TruthTable.const(3, True))
        assert node.kind == "const" and c is True

    def test_var_and_complement(self):
        node, c = decompose(TruthTable.var(3, 1))
        assert node.kind == "var" and node.var_index == 1 and not c
        node, c = decompose(~TruthTable.var(3, 1))
        assert node.kind == "var" and c

    def test_top_and(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a and (b or c))
        node, c = decompose(tt)
        assert node.kind in ("and", "maj")  # both are valid decompositions

    def test_maj_detected(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2)
        node, c = decompose(tt)
        assert node.kind == "maj" and not c

    def test_xor_detected(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a + b + c) % 2 == 1)
        node, _ = decompose(tt)
        assert node.kind == "xor"

    @given(st.integers(min_value=1, max_value=4), st.data())
    @settings(max_examples=150, deadline=None)
    def test_dsd_evaluates_correctly(self, n, data):
        bits = data.draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
        tt = TruthTable(n, bits)
        node, c = decompose(tt)
        for m in range(1 << n):
            assignment = [bool((m >> v) & 1) for v in range(n)]
            assert eval_dsd(node, c, assignment) == tt.get_bit(m), (tt, node, c, m)

    def test_costs_positive(self):
        tt = TruthTable.from_hex(4, "cafe")
        node, _ = decompose(tt)
        assert dsd_num_gates(node) >= 1
        assert dsd_depth(node) >= 1
