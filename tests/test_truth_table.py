"""Unit and property tests for the truth-table engine."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.truth.truth_table import TruthTable, var_mask


def tts(max_vars=5):
    return st.integers(min_value=0, max_value=max_vars).flatmap(
        lambda n: st.builds(
            TruthTable, st.just(n), st.integers(min_value=0, max_value=(1 << (1 << n)) - 1)
        )
    )


class TestConstruction:
    def test_const(self):
        assert TruthTable.const(3, False).bits == 0
        assert TruthTable.const(3, True).bits == 0xFF

    def test_var_masks(self):
        assert var_mask(2, 0) == 0b1010
        assert var_mask(2, 1) == 0b1100
        assert var_mask(3, 2) == 0xF0

    def test_var_mask_out_of_range(self):
        with pytest.raises(ValueError):
            var_mask(2, 2)

    def test_from_binary_string(self):
        tt = TruthTable.from_binary_string("1000")
        assert tt == TruthTable.var(2, 0) & TruthTable.var(2, 1)

    def test_from_binary_string_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_binary_string("101")

    def test_from_function(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a and (b or c))
        for m in range(8):
            a, b, c = bool(m & 1), bool(m & 2), bool(m & 4)
            assert tt.get_bit(m) == (a and (b or c))

    def test_from_hex_roundtrip(self):
        tt = TruthTable.from_hex(4, "cafe")
        assert tt.to_hex() == "cafe"


class TestOperators:
    def test_and_or_xor_not(self):
        a = TruthTable.var(2, 0)
        b = TruthTable.var(2, 1)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_mismatched_vars(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 0) & TruthTable.var(3, 0)

    def test_evaluate(self):
        maj = TruthTable.from_function(3, lambda a, b, c: (a + b + c) >= 2)
        assert maj.evaluate([True, True, False])
        assert not maj.evaluate([True, False, False])


class TestCofactorSupport:
    def test_cofactor(self):
        f = TruthTable.from_function(3, lambda a, b, c: a and (b or c))
        f_a1 = f.cofactor(0, True)
        expect = TruthTable.from_function(3, lambda a, b, c: b or c)
        assert f_a1 == expect

    def test_support(self):
        f = TruthTable.var(4, 2)
        assert f.support() == [2]
        g = TruthTable.var(4, 0) ^ TruthTable.var(4, 3)
        assert g.support() == [0, 3]

    def test_min_base(self):
        g = TruthTable.var(4, 1) & TruthTable.var(4, 3)
        small, sup = g.min_base()
        assert sup == [1, 3]
        assert small == TruthTable.var(2, 0) & TruthTable.var(2, 1)

    @given(tts(4))
    @settings(max_examples=100, deadline=None)
    def test_shannon_expansion(self, tt):
        for v in range(tt.num_vars):
            x = TruthTable.var(tt.num_vars, v)
            rebuilt = (x & tt.cofactor(v, True)) | (~x & tt.cofactor(v, False))
            assert rebuilt == tt


class TestPermutation:
    def test_flip(self):
        f = TruthTable.var(2, 0) & TruthTable.var(2, 1)  # AND
        g = f.flip(0)  # !a AND b
        expect = TruthTable.from_function(2, lambda a, b: (not a) and b)
        assert g == expect

    def test_swap_adjacent(self):
        f = TruthTable.from_function(3, lambda a, b, c: a and not b and c)
        g = f.swap_adjacent(0)
        expect = TruthTable.from_function(3, lambda a, b, c: b and not a and c)
        assert g == expect

    @given(tts(4), st.data())
    @settings(max_examples=100, deadline=None)
    def test_permute_consistent_with_evaluate(self, tt, data):
        n = tt.num_vars
        if n == 0:
            return
        perm = data.draw(st.permutations(range(n)))
        g = tt.permute(list(perm))
        for m in range(1 << n):
            assign = [bool((m >> i) & 1) for i in range(n)]
            src = [False] * n
            for i in range(n):
                src[perm[i]] = assign[i]
            assert g.evaluate(assign) == tt.evaluate(src)

    @given(tts(4))
    @settings(max_examples=60, deadline=None)
    def test_double_flip_identity(self, tt):
        for v in range(tt.num_vars):
            assert tt.flip(v).flip(v) == tt


class TestResize:
    def test_extend_preserves_function(self):
        f = TruthTable.var(2, 0) & TruthTable.var(2, 1)
        g = f.extend(4)
        for m in range(16):
            assert g.get_bit(m) == f.get_bit(m & 3)

    def test_shrink_requires_independence(self):
        f = TruthTable.var(3, 2)
        with pytest.raises(ValueError):
            f.shrink(2)
        g = TruthTable.var(3, 0).extend(3)
        assert g.shrink(1) == TruthTable.var(1, 0)

    @given(tts(3))
    @settings(max_examples=60, deadline=None)
    def test_extend_then_minbase(self, tt):
        big = tt.extend(5)
        small, sup = big.min_base()
        assert all(s < tt.num_vars for s in sup)
