"""Resource governance: memory budgets, admission control, the circuit
breaker, health probes, and disk-safe stores.

The graceful-degradation contract, asserted end to end:

* a worker past its ``memory_limit`` ends that circuit ``oom`` — final,
  never retried, the rest of the suite unharmed — whether the budget is
  enforced in-worker (``RLIMIT_AS``) or by the supervisor's RSS poll;
* a saturated daemon sheds submissions with ``429`` + ``Retry-After``
  while cache hits keep being served, and ``/readyz`` flips not-ready →
  ready as the queue drains;
* a circuit failing *identically* across runs is quarantined in the
  store and skipped by resumed runs until ``requarantine`` clears it;
* a store append that hits ENOSPC fails the *record*, not the file — a
  clean resumable prefix survives, including when the final line is
  truncated at any byte offset.
"""

import errno
import json
import multiprocessing
import os
import random
import time
import warnings
from pathlib import Path

import pytest

from repro.batch import (
    BatchRunner,
    Fault,
    FaultPlan,
    JsonlEventSink,
    ResultStore,
    StoreWriteError,
    failure_signature,
    get_suite,
    jittered_backoff,
    parse_memory_limit,
    read_events,
)
from repro.batch.events import EVENT_KINDS
from repro.batch.faults import FAULT_MODES, apply_fault

_FORK = multiprocessing.get_start_method() == "fork"
fork_only = pytest.mark.skipif(not _FORK, reason="process-pool test needs fork")


# ---------------------------------------------------------------------- #
# jittered backoff (S1)                                                   #
# ---------------------------------------------------------------------- #

class TestJitteredBackoff:
    def test_nominal_is_a_lower_bound(self):
        """Jitter is additive above the exponential schedule — the nominal
        delay is a floor, never undercut (retry pacing tests rely on it)."""
        for attempt in (1, 2, 3, 5):
            nominal = min(60.0, 0.5 * 2 ** (attempt - 1))
            for _ in range(50):
                d = jittered_backoff(0.5, attempt)
                assert nominal <= d <= nominal * 1.5

    def test_cap_bounds_the_nominal(self):
        assert jittered_backoff(10.0, 30, cap=2.0) <= 3.0

    def test_injectable_rng_is_deterministic(self):
        a = jittered_backoff(0.5, 2, rng=random.Random(7).random)
        b = jittered_backoff(0.5, 2, rng=random.Random(7).random)
        assert a == b

    def test_spreads_lockstep_retries(self):
        draws = {jittered_backoff(0.5, 1) for _ in range(20)}
        assert len(draws) > 1

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            jittered_backoff(0.5, 0)


# ---------------------------------------------------------------------- #
# memory-limit parsing                                                    #
# ---------------------------------------------------------------------- #

class TestParseMemoryLimit:
    def test_none_passes_through(self):
        assert parse_memory_limit(None) is None

    def test_plain_bytes(self):
        assert parse_memory_limit(1 << 30) == 1 << 30
        assert parse_memory_limit("1048576") == 1 << 20

    @pytest.mark.parametrize("text,expect", [
        ("512M", 512 * 1024 * 1024),
        ("512mb", 512 * 1024 * 1024),
        ("2G", 2 * 1024 ** 3),
        ("1.5g", int(1.5 * 1024 ** 3)),
        ("64k", 64 * 1024),
        (" 1 GB ", 1024 ** 3),
    ])
    def test_suffixes(self, text, expect):
        assert parse_memory_limit(text) == expect

    @pytest.mark.parametrize("bad", ["", "lots", "-512M", "0", "512Q"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError, match="memory limit"):
            parse_memory_limit(bad)


# ---------------------------------------------------------------------- #
# resource-fault plumbing                                                 #
# ---------------------------------------------------------------------- #

class TestResourceFaults:
    def test_modes_registered(self):
        for mode in ("memhog", "enospc", "slowleak"):
            assert mode in FAULT_MODES

    def test_payload_round_trips_mb(self):
        plan = FaultPlan({"a": Fault("memhog", mb=2048)})
        payload = plan.to_payload()
        assert payload["a"][0] == "memhog"
        assert payload["a"][4] == 2048

    def test_legacy_four_tuples_still_apply(self):
        """Pre-governance payloads were 4-tuples — they must keep working
        (the serve API accepts raw tuples from old clients)."""
        apply_fault({"a": ("raise", 1, 0.0, 13)}, "a", 2)   # attempt 2 > times

    def test_enospc_raises_oserror_enospc(self):
        with pytest.raises(OSError) as info:
            apply_fault(FaultPlan({"a": Fault("enospc")}).to_payload(),
                        "a", 1)
        assert info.value.errno == errno.ENOSPC


# ---------------------------------------------------------------------- #
# failure signatures (circuit-breaker identity)                           #
# ---------------------------------------------------------------------- #

class TestFailureSignature:
    def test_digit_runs_normalized(self):
        """Pids, addresses and timings change every run; the failure mode
        does not — digits must not break identity."""
        a = failure_signature("crashed", "worker pid 4411 died (signal 9)")
        b = failure_signature("crashed", "worker pid 9021 died (signal 11)")
        assert a == b

    def test_first_line_only(self):
        a = failure_signature("error", "ValueError: bad\n  at frame 1")
        b = failure_signature("error", "ValueError: bad\n  at frame 2\nmore")
        assert a == b

    def test_status_distinguishes(self):
        assert (failure_signature("error", "boom")
                != failure_signature("timeout", "boom"))


# ---------------------------------------------------------------------- #
# memory budgets in the batch pool (tentpole 1)                           #
# ---------------------------------------------------------------------- #

@fork_only
class TestMemoryBudgets:
    def test_memhog_ends_oom_others_survive(self, tmp_path):
        """One circuit hogs past the budget: exactly that circuit ends
        ``oom`` (not retried, despite retries > 0); the rest stay ok."""
        log = []
        batch = BatchRunner(
            jobs=2, return_networks=False, memory_limit="512M", retries=1,
            events=log.append,
            faults=FaultPlan({"ctrl": Fault("memhog", mb=4096)}),
        ).run(get_suite("epfl-mini"), "b", scale="tiny")
        by_name = {o.name: o for o in batch.outcomes}
        assert by_name["ctrl"].status == "oom"
        assert by_name["ctrl"].attempts == 1          # final, never retried
        assert "MemoryError" in by_name["ctrl"].error
        assert all(o.ok for n, o in by_name.items() if n != "ctrl")
        kinds = [e.kind for e in log]
        assert kinds.count("oom") == 1
        assert "retried" not in kinds

    def test_rss_poll_backstop(self, monkeypatch):
        """With in-worker rlimits unavailable, the supervisor's RSS poll
        still enforces the budget (fork start method: the monkeypatched
        no-op is inherited by the child)."""
        import repro.batch.runner as runner_mod

        monkeypatch.setattr(runner_mod, "_apply_memory_limit",
                            lambda limit: False)
        log = []
        batch = BatchRunner(
            jobs=2, return_networks=False, memory_limit="256M",
            events=log.append,
            faults=FaultPlan({"ctrl": Fault("slowleak", mb=1024,
                                            seconds=30.0)}),
        ).run(["ctrl", "dec"], "b", scale="tiny")
        by_name = {o.name: o for o in batch.outcomes}
        assert by_name["ctrl"].status == "oom"
        assert "memory budget" in by_name["ctrl"].error
        assert by_name["dec"].ok
        oom = [e for e in log if e.kind == "oom"]
        assert oom and "RSS poll" in oom[0].detail

    def test_oom_counts_as_failure_not_quarantined(self):
        batch = BatchRunner(
            jobs=2, return_networks=False, memory_limit="512M",
            faults=FaultPlan({"ctrl": Fault("memhog", mb=4096)}),
        ).run(["ctrl", "dec"], "b", scale="tiny")
        assert [o.name for o in batch.failures] == ["ctrl"]
        assert batch.quarantined == []


# ---------------------------------------------------------------------- #
# the circuit breaker (tentpole 3)                                        #
# ---------------------------------------------------------------------- #

class TestCircuitBreaker:
    def _failing_run(self, store, **kw):
        return BatchRunner(
            return_networks=False,
            faults=FaultPlan({"dec": Fault("raise")}), **kw,
        ).run(["ctrl", "dec"], "b", scale="tiny", store=store)

    def test_identical_failures_trip_the_breaker(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        self._failing_run(store)
        key = self._failing_run(store).run_key
        assert list(store.quarantined(key)) == ["dec"]
        assert "ctrl" not in store.quarantined(key)

    def test_one_failure_does_not_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        key = self._failing_run(store).run_key
        assert store.quarantined(key) == {}

    def test_different_failures_do_not_trip(self, tmp_path):
        """The breaker needs the *same* signature — an error run followed
        by a timeout run is flakiness, not a deterministic failure."""
        store = ResultStore(tmp_path / "store.jsonl")
        self._failing_run(store)
        key = BatchRunner(
            return_networks=False,
            faults=FaultPlan({"dec": Fault("enospc")}),   # different error
        ).run(["ctrl", "dec"], "b", scale="tiny", store=store).run_key
        assert store.quarantined(key) == {}

    def test_resumed_run_skips_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        self._failing_run(store)
        self._failing_run(store)
        log = []
        batch = BatchRunner(return_networks=False, events=log.append).run(
            ["ctrl", "dec"], "b", scale="tiny", store=store, resume=True)
        by_name = {o.name: o for o in batch.outcomes}
        assert by_name["dec"].status == "quarantined"
        assert "quarantined" in by_name["dec"].error
        assert by_name["ctrl"].status == "ok"
        assert any(e.kind == "quarantined" and e.circuit == "dec"
                   for e in log)
        # quarantined is a skip, not a failure — exit codes stay honest
        assert by_name["dec"] not in batch.failures
        assert [o.name for o in batch.quarantined] == ["dec"]

    def test_requarantine_clears_and_reruns(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        self._failing_run(store)
        self._failing_run(store)
        batch = BatchRunner(return_networks=False).run(
            ["ctrl", "dec"], "b", scale="tiny", store=store, resume=True,
            requarantine=True)
        assert all(o.ok for o in batch.outcomes)
        assert store.quarantined(batch.run_key) == {}

    def test_requarantine_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            BatchRunner(return_networks=False).run(
                ["ctrl"], "b", scale="tiny", requarantine=True)

    def test_store_records_quarantined_status(self, tmp_path):
        """The skip is recorded (status ``quarantined``) so a later
        ``completed()`` never mistakes it for ok."""
        store = ResultStore(tmp_path / "store.jsonl")
        self._failing_run(store)
        self._failing_run(store)
        batch = BatchRunner(return_networks=False).run(
            ["ctrl", "dec"], "b", scale="tiny", store=store, resume=True)
        rec = store.runs()[-1].results["dec"]
        assert rec["status"] == "quarantined"
        assert "dec" not in store.completed(batch.run_key)

    def test_breaker_disabled_at_zero(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        self._failing_run(store, quarantine_after=0)
        key = self._failing_run(store, quarantine_after=0).run_key
        assert store.quarantined(key) == {}


# ---------------------------------------------------------------------- #
# disk safety (tentpole 5)                                                #
# ---------------------------------------------------------------------- #

class TestDiskSafety:
    def _store_with_run(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        run_id = store.open_run(flow="b", suite="s", scale="tiny",
                                run_key="k" * 16)
        store.append_result(run_id, {"circuit": "a", "status": "ok"})
        return store, run_id

    def test_enospc_append_raises_and_rolls_back(self, tmp_path, monkeypatch):
        import repro.batch.store as store_mod

        store, run_id = self._store_with_run(tmp_path)
        before = store.path.read_bytes()

        def no_space(fd, data):
            os.write(fd, data[: len(data) // 2])      # torn half-record
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(store_mod, "_write_all", no_space)
        with pytest.raises(StoreWriteError, match="clean prefix"):
            store.append_result(run_id, {"circuit": "b", "status": "ok"})
        assert store.path.read_bytes() == before       # rolled back
        monkeypatch.undo()
        assert store.runs()[-1].results.keys() == {"a"}

    def test_short_write_is_enospc(self, tmp_path, monkeypatch):
        """A zero-byte ``os.write`` (disk full mid-append) must surface as
        ENOSPC, not spin forever."""
        import repro.batch.store as store_mod

        store, run_id = self._store_with_run(tmp_path)
        real_write = os.write
        budget = [10]

        def tiny_disk(fd, data):
            take = min(budget[0], len(data))
            budget[0] -= take
            return real_write(fd, data[:take]) if take else 0

        monkeypatch.setattr(os, "write", tiny_disk)
        try:
            with pytest.raises(OSError, match="no space") as info:
                store_mod._write_all(
                    os.open(store.path, os.O_WRONLY | os.O_APPEND),
                    b"x" * 64)
        finally:
            monkeypatch.undo()
        assert info.value.errno == errno.ENOSPC

    def test_runner_survives_store_failure(self, tmp_path, monkeypatch):
        """A run whose store goes read-only mid-suite still finishes and
        returns outcomes — degraded (a warning), not dead."""
        import repro.batch.store as store_mod

        store = ResultStore(tmp_path / "store.jsonl")
        runner = BatchRunner(return_networks=False)
        real_append = store_mod._write_all
        calls = [0]

        def flaky(fd, data):
            calls[0] += 1
            if calls[0] > 1:                          # header lands, rest fail
                raise OSError(errno.ENOSPC, "no space left on device")
            return real_append(fd, data)

        monkeypatch.setattr(store_mod, "_write_all", flaky)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            batch = runner.run(["ctrl"], "b", scale="tiny", store=store)
        assert all(o.ok for o in batch.outcomes)
        assert any("append failed" in str(w.message) for w in caught)

    def test_writable_probe(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.writable()
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        assert not ResultStore(blocker / "store.jsonl").writable()

    def test_writable_adds_no_bytes(self, tmp_path):
        store, _ = self._store_with_run(tmp_path)
        before = store.path.read_bytes()
        assert store.writable()
        assert store.path.read_bytes() == before


class TestTruncationProperty:
    """S3: truncate the store at *every* byte offset of the final record —
    the reader must always warn-and-keep-the-prefix, never raise, and
    never conjure a phantom record from a torn line."""

    def test_every_truncation_offset(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        run_id = store.open_run(flow="b", suite="s", scale="tiny",
                                run_key="k" * 16)
        store.append_result(run_id, {"circuit": "a", "status": "ok"})
        store.append_result(run_id, {"circuit": "b", "status": "ok"})
        full = path.read_bytes()
        final = json.dumps({"kind": "result", "run_id": run_id,
                            "circuit": "c", "status": "ok"}).encode() + b"\n"
        base = len(full)
        for cut in range(len(final) + 1):
            path.write_bytes(full + final[:cut])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                runs = ResultStore(path).runs()       # must never raise
            results = runs[-1].results
            assert {"a", "b"} <= results.keys()
            # the JSON document is complete once every byte but the
            # trailing newline landed; any shorter cut is a torn line
            # that must never surface as circuit c's completed record
            if cut >= len(final) - 1:
                assert results["c"]["status"] == "ok"
            else:
                assert "c" not in results
        # torn-line truncation warns (the crash-site breadcrumb)
        path.write_bytes(full + final[: len(final) - 2])
        with pytest.warns(UserWarning, match="truncated final record"):
            ResultStore(path).runs()


# ---------------------------------------------------------------------- #
# event-sink re-arming (S2)                                               #
# ---------------------------------------------------------------------- #

class TestSinkRearm:
    def _event(self):
        from repro.batch.events import RunEvent

        return RunEvent(kind="started", circuit="a", index=0)

    def test_rearm_recovers_and_reports_drops(self, tmp_path):
        blocker = tmp_path / "dir"
        blocker.write_text("")                        # parent is a file
        sink = JsonlEventSink(blocker / "events.jsonl")
        with pytest.warns(UserWarning, match="disabled after write"):
            sink(self._event())
        sink(self._event())                           # silent, counted
        assert sink.dropped == 2
        blocker.unlink()
        blocker.mkdir()                               # path is now valid
        sink.rearm()
        sink(self._event())
        sink.close()
        events = read_events(blocker / "events.jsonl")
        assert [e["kind"] for e in events] == ["sink_disabled", "started"]
        assert "2 event(s) were dropped" in events[0]["detail"]
        assert sink.dropped == 0

    def test_rearm_on_healthy_sink_is_a_noop(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "events.jsonl")
        sink(self._event())
        sink.rearm()
        sink(self._event())
        sink.close()
        kinds = [e["kind"] for e in read_events(tmp_path / "events.jsonl")]
        assert kinds == ["started", "started"]

    def test_runner_rearms_per_run(self, tmp_path):
        """Each ``run()`` retries a sink broken in the previous run —
        warn-once is per run, not forever."""
        blocker = tmp_path / "dir"
        blocker.write_text("")
        sink = JsonlEventSink(blocker / "events.jsonl")
        runner = BatchRunner(return_networks=False, events=sink)
        with pytest.warns(UserWarning, match="disabled after write"):
            runner.run(["ctrl"], "b", scale="tiny")
        blocker.unlink()
        blocker.mkdir()
        runner.run(["ctrl"], "b", scale="tiny")
        sink.close()
        kinds = [e["kind"] for e in read_events(blocker / "events.jsonl")]
        assert kinds[0] == "sink_disabled"
        assert "started" in kinds and "finished" in kinds

    def test_new_event_kinds_registered(self):
        for kind in ("oom", "quarantined", "sink_disabled"):
            assert kind in EVENT_KINDS


# ---------------------------------------------------------------------- #
# admission control + probes in the daemon (tentpoles 2 and 4)            #
# ---------------------------------------------------------------------- #

@fork_only
class TestServeGovernance:
    def _saturate(self, client, hang=1.5):
        """Fill a jobs=1, max_queued=1 daemon: one hanging job running,
        one queued.  Returns the two job ids."""
        ids = []
        for circuit in ("ctrl", "dec"):
            job = client.submit(circuit, flow="b; rf", scale="tiny",
                                timeout=30,
                                faults={circuit: ("hang", 0, hang, 13)})
            ids.append(job["id"])
        return ids

    def _wait_queued(self, daemon):
        for _ in range(100):
            if daemon.pool.stats()["queue_depth"] >= 1:
                return
            time.sleep(0.05)
        raise AssertionError("second job never queued")

    def test_saturation_sheds_with_retry_after(self, tmp_path):
        from repro.serve import ServeClient, ServeDaemon, ServeError

        with ServeDaemon(port=0, jobs=1, max_queued=1, retry_after=0.25,
                         store=tmp_path / "serve.jsonl") as daemon:
            client = ServeClient(port=daemon.port, retries=0)
            cached = client.run("adder", flow="b", scale="tiny")
            ids = self._saturate(client)
            self._wait_queued(daemon)
            with pytest.raises(ServeError) as info:
                client.submit("square", flow="b; rf", scale="tiny")
            assert info.value.status == 429
            assert info.value.retry_after == 0.25
            assert "saturated" in str(info.value)
            # cache hits and coalesced duplicates are always served
            hit = client.submit("adder", flow="b", scale="tiny")
            assert hit["status"] == "done" and hit["cached"]
            assert hit["record"] == cached
            dup = client.submit("ctrl", flow="b; rf", scale="tiny",
                                timeout=30,
                                faults={"ctrl": ("hang", 0, 1.5, 13)})
            assert dup["coalesced"]                   # attached, not shed
            assert daemon.stats()["shed"] == 1
            for job_id in ids:
                client.wait(job_id)
            # drained: admission reopens
            job = client.submit("square", flow="b; rf", scale="tiny")
            assert job["status"] in ("queued", "running", "done")

    def test_readyz_flips_with_queue_depth(self, tmp_path):
        from repro.serve import ServeClient, ServeDaemon

        with ServeDaemon(port=0, jobs=1, max_queued=1, retry_after=0.25,
                         store=tmp_path / "serve.jsonl") as daemon:
            client = ServeClient(port=daemon.port, retries=0)
            assert client.healthz()["ok"]
            assert client.readyz()["ready"]
            ids = self._saturate(client)
            self._wait_queued(daemon)
            ready = client.readyz()
            assert not ready["ready"]
            assert not ready["checks"]["queue_headroom"]
            assert ready["checks"]["store_writable"]
            for job_id in ids:
                client.wait(job_id)
            assert client.readyz()["ready"]

    def test_readyz_reports_unwritable_store(self, tmp_path):
        from repro.serve import ServeDaemon

        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with ServeDaemon(port=0, jobs=1,
                         store=blocker / "serve.jsonl") as daemon:
            ready = daemon.readiness()
            assert not ready["ready"]
            assert not ready["checks"]["store_writable"]

    def test_oom_job_is_terminal_and_uncached(self, tmp_path):
        from repro.serve import ServeClient, ServeDaemon

        with ServeDaemon(port=0, jobs=1, memory_limit="512M",
                         store=tmp_path / "serve.jsonl") as daemon:
            client = ServeClient(port=daemon.port, retries=0)
            job = client.submit("ctrl", flow="b; rf", scale="tiny",
                                faults={"ctrl": ("memhog", 0, 0, 13, 4096)})
            done = client.wait(job["id"], timeout=60)
            assert done["status"] == "oom"
            assert "MemoryError" in done["error"]
            assert daemon.pool.stats()["ooms"] == 1
            again = client.submit("ctrl", flow="b; rf", scale="tiny",
                                  faults={"ctrl": ("memhog", 0, 0, 13, 4096)})
            assert not again.get("cached", False)     # failures never cached
            client.wait(again["id"], timeout=60)


class TestClientBackoff:
    def test_submit_retries_through_429(self, monkeypatch):
        """The client resubmits after a 429, sleeping at least the
        daemon's Retry-After (jittered backoff on top)."""
        from repro.serve import ServeClient, ServeError

        client = ServeClient(port=1, retries=3, backoff=0.2)
        attempts = []

        def fake_request(method, path, body=None, **kw):
            attempts.append(path)
            if len(attempts) < 3:
                raise ServeError("saturated", status=429, retry_after=0.7)
            return {"id": "j1", "status": "queued"}

        slept = []
        monkeypatch.setattr(client, "_request", fake_request)
        monkeypatch.setattr(time, "sleep", slept.append)
        job = client.submit("adder", flow="b")
        assert job["id"] == "j1"
        assert len(attempts) == 3
        assert len(slept) == 2
        assert all(delay >= 0.7 for delay in slept)   # Retry-After is a floor

    def test_retries_zero_surfaces_the_429(self, monkeypatch):
        from repro.serve import ServeClient, ServeError

        client = ServeClient(port=1, retries=0)

        def always_shed(method, path, body=None, **kw):
            raise ServeError("saturated", status=429, retry_after=1.0)

        monkeypatch.setattr(client, "_request", always_shed)
        with pytest.raises(ServeError) as info:
            client.submit("adder", flow="b")
        assert info.value.status == 429

    def test_non_429_errors_are_not_retried(self, monkeypatch):
        from repro.serve import ServeClient, ServeError

        client = ServeClient(port=1, retries=5)
        calls = []

        def bad_request(method, path, body=None, **kw):
            calls.append(path)
            raise ServeError("nope", status=400)

        monkeypatch.setattr(client, "_request", bad_request)
        with pytest.raises(ServeError):
            client.submit("adder", flow="b")
        assert len(calls) == 1


class TestGovernanceValidation:
    def test_daemon_rejects_bad_knobs(self):
        from repro.serve import ServeDaemon

        with pytest.raises(ValueError, match="max_queued"):
            ServeDaemon(port=0, max_queued=-1)
        with pytest.raises(ValueError, match="retry_after"):
            ServeDaemon(port=0, retry_after=0)

    def test_runner_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="memory limit"):
            BatchRunner(memory_limit="a lot")
        with pytest.raises(ValueError, match="quarantine_after"):
            BatchRunner(quarantine_after=-1)
