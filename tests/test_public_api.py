"""The public API contract: every export documented, every import stable.

This is the CI gate behind the docs: a public symbol exported from
``repro/__init__.py`` (or from the flow / batch subpackages) without a
docstring fails the suite, so the reference documentation cannot silently
rot as the API grows.
"""

import inspect

import pytest

import repro
import repro.batch
import repro.flow

_SUBJECTS = [
    (repro, name) for name in repro.__all__
] + [
    (repro.flow, name) for name in repro.flow.__all__
] + [
    (repro.batch, name) for name in repro.batch.__all__
]


@pytest.mark.parametrize("module,name",
                         _SUBJECTS,
                         ids=[f"{m.__name__}.{n}" for m, n in _SUBJECTS])
def test_public_export_has_docstring(module, name):
    obj = getattr(module, name)
    if isinstance(obj, (str, int, float, list, tuple, dict)):
        return                      # data constants (__version__, NAMED_FLOWS)
    doc = inspect.getdoc(obj)
    assert doc and doc.strip(), (
        f"public export {module.__name__}.{name} lacks a docstring — "
        f"document it (the docs site links against these)")


def test_all_lists_are_exact():
    """Everything in __all__ actually exists (no stale exports)."""
    for module, name in _SUBJECTS:
        assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"


def test_public_dataclasses_document_methods():
    """The batch layer's user-facing classes document their public methods."""
    from repro.batch import BatchRunner, ResultStore, Suite

    for cls in (BatchRunner, ResultStore, Suite):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"
