#!/usr/bin/env python
"""Kill-and-resume smoke — the ROADMAP exit criterion, as a CI step.

Starts a 2-worker batch over ``epfl-mini`` in a child process (every
circuit slowed by an injected hang so the kill lands mid-suite), SIGKILLs
the child once at least two circuits have finished, reaps the orphaned
workers, resumes the run over the same store with ``resume=True``, and
asserts:

* the interrupted run left a durable, *partial* prefix (not closed);
* the resume skipped exactly the completed circuits;
* the union of results is **bit-identical** to an uninterrupted reference
  run — ``store.compare()`` reports zero regressions and zero fingerprint
  divergences.

Usage::

    PYTHONPATH=src python scripts/kill_resume_smoke.py [workdir]

``REPRO_SMOKE_SUITE`` / ``REPRO_SMOKE_FLOW`` override the suite and flow
(defaults: ``epfl-mini`` with ``b; rf``) — CI runs the smoke twice, once
combinational and once over ``seq-mini`` with a sequential flow, so the
resume machinery is exercised on register-bearing circuits too.

Exits non-zero (with a diagnostic) on any violated property.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.batch import (      # noqa: E402  (path bootstrap above)
    BatchRunner,
    EventLog,
    ResultStore,
    get_suite,
    read_events,
)

SUITE = os.environ.get("REPRO_SMOKE_SUITE", "epfl-mini")
FLOW = os.environ.get("REPRO_SMOKE_FLOW", "b; rf")

_CHILD = """
import sys
from repro.batch import BatchRunner, Fault, FaultPlan, JsonlEventSink, \\
    ResultStore, get_suite

store, events = sys.argv[1], sys.argv[2]
suite = get_suite("{suite}")
runner = BatchRunner(jobs=2, events=JsonlEventSink(events),
                     faults=FaultPlan({{n: Fault("hang", seconds=0.8)
                                        for n in suite.names()}}))
runner.run(suite, {flow!r}, scale="tiny", store=ResultStore(store))
""".format(suite=SUITE, flow=FLOW)


def fail(msg: str) -> None:
    print(f"KILL-RESUME SMOKE FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="kill_resume_smoke_"))
    workdir.mkdir(parents=True, exist_ok=True)
    store_path = workdir / "store.jsonl"
    events_path = workdir / "events.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")

    print(f"[1/4] starting 2-worker batch over {SUITE} "
          f"with {FLOW!r} (store={store_path}) ...")
    proc = subprocess.Popen([sys.executable, "-c", _CHILD, str(store_path),
                             str(events_path)], env=env)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                fail(f"child finished (rc={proc.returncode}) before the "
                     f"kill could land — hang injection not slowing it?")
            if events_path.exists():
                finished = sum(e["kind"] == "finished"
                               for e in read_events(events_path))
                if finished >= 2:
                    break
            time.sleep(0.05)
        else:
            fail("child made no observable progress in 120s")
        print(f"[2/4] {finished} circuits finished — SIGKILL the runner")
        proc.send_signal(signal.SIGKILL)
        proc.wait(30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(30)
        # reap the workers the SIGKILLed parent could not shut down
        for e in (read_events(events_path) if events_path.exists() else []):
            if e.get("worker") and e["worker"] != proc.pid:
                try:
                    os.kill(e["worker"], signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass

    store = ResultStore(store_path)
    runs = store.runs()
    if not runs:
        fail("the killed run left no store header at all")
    interrupted = runs[-1]
    if interrupted.closed:
        fail("the killed run reads back as closed")
    done = [c for c, r in interrupted.results.items()
            if r.get("status") == "ok"]
    total = len(get_suite(SUITE))
    if not 0 < len(done) < total:
        fail(f"expected a partial prefix, got {len(done)}/{total} circuits")
    print(f"[3/4] durable prefix: {len(done)}/{total} circuits — resuming")

    log = EventLog()
    resumed = BatchRunner(jobs=2, events=log).run(
        get_suite(SUITE), FLOW, scale="tiny", store=store, resume=True)
    if resumed.failures:
        fail(f"resume produced failures: "
             f"{[(o.name, o.status) for o in resumed.failures]}")
    skipped = [e.circuit for e in log.only("skipped")]
    if sorted(skipped) != sorted(done):
        fail(f"resume skipped {sorted(skipped)}, expected {sorted(done)}")

    print("[4/4] comparing against an uninterrupted reference run")
    # a separate store: sharing one would share the run key and the
    # reference run would itself resume instead of executing
    ref_store = ResultStore(workdir / "reference.jsonl")
    ref = BatchRunner(jobs=2).run(get_suite(SUITE), FLOW, scale="tiny",
                                  store=ref_store)
    if ref.failures:
        fail("the reference run itself failed")
    cmp = store.compare(store.find_run(resumed.run_id),
                        ref_store.find_run(ref.run_id))
    print(cmp.format())
    if cmp.regressions:
        fail(f"{len(cmp.regressions)} regression(s) vs the reference run")
    if cmp.divergences:
        fail(f"{len(cmp.divergences)} fingerprint divergence(s) vs the "
             f"reference run")
    fps = {o.name: o.fingerprint for o in resumed.outcomes}
    ref_fps = {o.name: o.fingerprint for o in ref.outcomes}
    if fps != ref_fps:
        fail("resumed fingerprints differ from the reference run")
    print(f"kill-and-resume smoke OK: killed at {len(done)}/{total}, "
          f"resumed {total - len(done)}, bit-identical to the reference")


if __name__ == "__main__":
    main()
