#!/usr/bin/env python
"""Serve smoke — the daemon's acceptance invariants, as a CI step.

Starts a real ``repro serve`` daemon subprocess on an ephemeral port
(``--port 0``, the bound port parsed from its first stdout line), then
drives it the way production traffic would:

* two **concurrent** clients submit the same tiny circuit + flow; exactly
  one computation is dispatched, and the second response is a cache hit
  (or coalesced onto the in-flight job) whose result record is
  **bit-identical** to the first;
* ``GET /stats`` confirms the cache accounting (1 miss, ≥1 hit) and that
  the pool dispatched exactly one job;
* ``POST /shutdown`` drains and the daemon exits **0**, leaving the
  store readable — a fresh ``ResultCache`` replays it and serves the
  record.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [workdir]

Exits non-zero (with a diagnostic) on any violated property.
"""

import json
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.serve import ResultCache, ServeClient  # noqa: E402

CIRCUIT = "ctrl"
FLOW = "b; rf; b"
SCALE = "tiny"


def fail(msg: str) -> None:
    print(f"SERVE SMOKE FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="serve_smoke_"))
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "serve_smoke.jsonl"

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--store", str(store)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO, env={**__import__("os").environ, "PYTHONPATH": "src"})
    try:
        banner = proc.stdout.readline().strip()
        print(f"daemon: {banner}")
        if "http://" not in banner:
            fail(f"unparseable banner: {banner!r} "
                 f"(stderr: {proc.stderr.read()[:2000]})")
        port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])

        # two concurrent clients, same work: one computation, two records
        records = [None, None]
        errors = []

        def submit(slot: int) -> None:
            try:
                with ServeClient(port=port) as client:
                    records[slot] = client.run(CIRCUIT, flow=FLOW,
                                               scale=SCALE, timeout=120)
            except Exception as exc:
                errors.append(f"client {slot}: {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            fail("; ".join(errors))
        blobs = [json.dumps(r, sort_keys=True) for r in records]
        if blobs[0] != blobs[1]:
            fail(f"concurrent records diverged:\n{blobs[0]}\n{blobs[1]}")
        if records[0].get("status") != "ok":
            fail(f"job did not succeed: {records[0]}")

        with ServeClient(port=port) as client:
            stats = client.stats()
            if stats["pool"]["dispatched"] != 1:
                fail(f"expected exactly 1 dispatch for 2 identical "
                     f"submissions, got {stats['pool']['dispatched']}")
            if stats["cache"]["hits"] < 1 or stats["cache"]["misses"] != 1:
                fail(f"cache accounting wrong: {stats['cache']}")
            # a third submission is a pure cache hit, bit-identical again
            third = client.submit(CIRCUIT, flow=FLOW, scale=SCALE)
            if not third.get("cached") or third.get("status") != "done":
                fail(f"third submission was not a cache hit: {third}")
            if json.dumps(third["record"], sort_keys=True) != blobs[0]:
                fail("third (cached) record diverged")
            client.shutdown(drain=True)

        rc = proc.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc} after graceful shutdown "
                 f"(stderr: {proc.stderr.read()[:2000]})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(10)

    # the store the daemon left behind is readable and warm
    cache = ResultCache(store)
    if len(cache) != 1:
        fail(f"store not readable / wrong entry count: {len(cache)}")
    print(f"serve smoke OK: 2 concurrent clients -> 1 dispatch, "
          f"bit-identical records, clean exit, warm store ({store})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
