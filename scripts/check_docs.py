#!/usr/bin/env python
"""Docs build/link check: every relative link in the markdown tree resolves.

Scans README.md and docs/*.md for markdown links and inline code references
to repository files, and fails (exit 1) when a target does not exist.
External (schemed) links are skipped — CI stays hermetic.  When the
``repro`` package is importable (``PYTHONPATH=src``), also verifies that
``docs/flow-dsl.md`` documents every registered pass mnemonic, so the pass
table cannot rot against the registry.

Run:  PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

SOURCES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def check_links() -> list[str]:
    errors = []
    for source in SOURCES:
        text = source.read_text()
        for target in LINK.findall(text):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            path = (source.parent / target.split("#")[0]).resolve()
            if not path.exists():
                errors.append(f"{source.relative_to(ROOT)}: broken link -> {target}")
    return errors


def check_nav() -> list[str]:
    """Every page mkdocs.yml navigates to must exist (the docs 'build')."""
    errors = []
    nav_page = re.compile(r":\s*([\w-]+\.md)\s*$")
    for line in (ROOT / "mkdocs.yml").read_text().splitlines():
        match = nav_page.search(line)
        if match and not (ROOT / "docs" / match.group(1)).exists():
            errors.append(f"mkdocs.yml: missing page docs/{match.group(1)}")
    return errors


def check_pass_table() -> list[str]:
    try:
        from repro.flow import available_passes
    except ImportError:
        print("note: repro not importable, skipping pass-table check "
              "(run with PYTHONPATH=src)")
        return []
    text = (ROOT / "docs" / "flow-dsl.md").read_text()
    return [f"docs/flow-dsl.md: pass {info.name!r} missing from the pass table"
            for info in available_passes() if f"`{info.name}`" not in text]


def main() -> int:
    errors = check_links() + check_nav() + check_pass_table()
    for error in errors:
        print(f"ERROR: {error}")
    print(f"checked {len(SOURCES)} markdown files: "
          + ("OK" if not errors else f"{len(errors)} error(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
