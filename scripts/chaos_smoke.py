#!/usr/bin/env python
"""Resource-governance chaos smoke — graceful degradation, as a CI step.

Three episodes, each asserting the exact promised outcome:

1. **Budgets** — a 2-worker run over ``epfl-mini`` with a memory hog, a
   hard crash and a hang injected, under ``memory_limit`` + ``timeout``
   + ``retries``: exactly one ``oom`` (never retried), the crash retried
   to ``ok``, the hang ``timeout``, everything else ``ok``; no leaked
   shared-memory segments; a clean resume finishes the failures' leftovers.
2. **Circuit breaker** — a circuit failing identically across two runs is
   quarantined; the next resumed run skips it (a ``quarantined`` event),
   and ``requarantine`` clears the bench.
3. **Admission control** — a saturated jobs=1 daemon sheds a submission
   with ``429`` + ``Retry-After`` while a cache hit is still served, and
   ``GET /readyz`` flips not-ready → ready as the queue drains.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [workdir]

Exits non-zero (with a diagnostic) on any violated property.
"""

import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.batch import (      # noqa: E402  (path bootstrap above)
    BatchRunner,
    EventLog,
    Fault,
    FaultPlan,
    ResultStore,
    get_suite,
)

SUITE = "epfl-mini"
FLOW = "b; rf"
SHM_DIR = Path("/dev/shm")


def fail(msg: str) -> None:
    print(f"CHAOS SMOKE FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def shm_segments() -> set:
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.glob("psm_*")}


def episode_budgets(workdir: Path) -> None:
    print(f"[1/3] memory budget + crash + hang over {SUITE} "
          "(memory_limit=512M, timeout=20s, retries=1) ...")
    store = ResultStore(workdir / "budget.jsonl")
    shm_before = shm_segments()
    log = EventLog()
    batch = BatchRunner(
        jobs=2, return_networks=False, memory_limit="512M", timeout=20.0,
        retries=1, events=log,
        faults=FaultPlan({
            "ctrl": Fault("memhog", mb=4096),
            "dec": Fault("exit", times=1),          # crashes once, then ok
            "int2float": Fault("hang", seconds=60.0),
        }),
    ).run(get_suite(SUITE), FLOW, scale="tiny", store=store)

    status = {o.name: o.status for o in batch.outcomes}
    expect = {"ctrl": "oom", "dec": "ok", "int2float": "timeout",
              "router": "ok", "cavlc": "ok"}
    if status != expect:
        fail(f"outcomes {status}, expected {expect}")
    by_name = {o.name: o for o in batch.outcomes}
    if by_name["ctrl"].attempts != 1:
        fail(f"oom was retried ({by_name['ctrl'].attempts} attempts) — "
             "ooms must be final")
    if by_name["dec"].attempts != 2:
        fail(f"crash not retried (attempts={by_name['dec'].attempts})")
    kinds = [e.kind for e in log.events]
    if kinds.count("oom") != 1:
        fail(f"expected exactly one oom event, got {kinds.count('oom')}")
    leaked = shm_segments() - shm_before
    if leaked:
        fail(f"leaked shared-memory segments: {sorted(leaked)}")

    # the failures leave a resumable prefix: a clean resume completes them
    resumed = BatchRunner(jobs=2, return_networks=False).run(
        get_suite(SUITE), FLOW, scale="tiny", store=store, resume=True)
    bad = [o.name for o in resumed.outcomes if not o.ok]
    if bad:
        fail(f"resume left failures: {bad}")
    skipped = [o.name for o in resumed.outcomes if o.resumed_from]
    if sorted(skipped) != ["cavlc", "dec", "router"]:
        fail(f"resume skipped {sorted(skipped)}, expected the three "
             "previously-ok circuits")
    print("      one oom (unretried), crash retried to ok, hang timed out, "
          "no shm leaks, clean resume")


def episode_breaker(workdir: Path) -> None:
    print("[2/3] circuit breaker: identical failures across two runs ...")
    store = ResultStore(workdir / "breaker.jsonl")

    def failing_run():
        return BatchRunner(
            return_networks=False,
            faults=FaultPlan({"dec": Fault("raise")}),
        ).run(["ctrl", "dec"], "b", scale="tiny", store=store)

    failing_run()
    key = failing_run().run_key
    if list(store.quarantined(key)) != ["dec"]:
        fail(f"breaker did not trip: quarantined={store.quarantined(key)}")

    log = EventLog()
    resumed = BatchRunner(return_networks=False, events=log).run(
        ["ctrl", "dec"], "b", scale="tiny", store=store, resume=True)
    status = {o.name: o.status for o in resumed.outcomes}
    if status != {"ctrl": "ok", "dec": "quarantined"}:
        fail(f"resumed run outcomes {status}, expected dec quarantined")
    if not any(e.kind == "quarantined" and e.circuit == "dec"
               for e in log.events):
        fail("no quarantined event emitted on the skip")

    cleared = BatchRunner(return_networks=False).run(
        ["ctrl", "dec"], "b", scale="tiny", store=store, resume=True,
        requarantine=True)
    if not all(o.ok for o in cleared.outcomes):
        fail("requarantine did not rerun the benched circuit")
    print("      tripped after 2 identical failures, skipped on resume, "
          "cleared by requarantine")


def episode_admission(workdir: Path) -> None:
    print("[3/3] admission control: jobs=1, max_queued=1 daemon ...")
    from repro.serve import ServeClient, ServeDaemon, ServeError

    with ServeDaemon(port=0, jobs=1, max_queued=1, retry_after=0.5,
                     store=workdir / "serve.jsonl") as daemon:
        client = ServeClient(port=daemon.port, retries=0)
        cached = client.run("adder", flow="b", scale="tiny")
        if not client.readyz()["ready"]:
            fail("fresh daemon not ready")

        hang_ids = []
        for circuit in ("ctrl", "dec"):
            job = client.submit(circuit, flow=FLOW, scale="tiny", timeout=30,
                                faults={circuit: ("hang", 0, 2.0, 13)})
            hang_ids.append(job["id"])
        deadline = time.monotonic() + 10
        while daemon.pool.stats()["queue_depth"] < 1:
            if time.monotonic() > deadline:
                fail("second hang job never queued")
            time.sleep(0.05)

        try:
            client.submit("square", flow=FLOW, scale="tiny")
            fail("saturated daemon accepted a fresh submission")
        except ServeError as exc:
            if exc.status != 429:
                fail(f"expected 429, got {exc.status}: {exc}")
            if exc.retry_after != 0.5:
                fail(f"Retry-After {exc.retry_after}, expected 0.5")

        hit = client.submit("adder", flow="b", scale="tiny")
        if hit["status"] != "done" or not hit["cached"] or \
                hit["record"] != cached:
            fail("cache hit not served while saturated")
        if client.readyz()["ready"]:
            fail("/readyz ready while saturated")

        for job_id in hang_ids:
            client.wait(job_id, timeout=60)
        deadline = time.monotonic() + 10
        while not client.readyz()["ready"]:
            if time.monotonic() > deadline:
                fail("/readyz never recovered after the queue drained")
            time.sleep(0.05)
        retried = ServeClient(port=daemon.port, retries=4, backoff=0.25)
        job = retried.submit("square", flow=FLOW, scale="tiny")
        retried.wait(job["id"], timeout=60)
    print("      429 + Retry-After on saturation, cache hit still served, "
          "readyz flipped not-ready -> ready")


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="chaos_smoke_"))
    workdir.mkdir(parents=True, exist_ok=True)
    episode_budgets(workdir)
    episode_breaker(workdir)
    episode_admission(workdir)
    print("CHAOS SMOKE PASSED")


if __name__ == "__main__":
    main()
