#!/usr/bin/env python3
"""Mapping-based logic optimization with MCH (the paper's Fig. 5 / Fig. 6).

Shows graph mapping used as a logic optimizer, written as flow scripts:
iterate XMG remapping until it converges to a local optimum
(``converge7( gm -r xmg )``), then escape that optimum by remapping
*through* a mixed (MIG + XMG) choice network
(``converge6( mch -p mig,xmg; gm -r xmg )``).  Both phases run under one
shared :class:`~repro.flow.context.FlowContext`, so the NPN synthesis
caches and cut databases carry across rounds.

Run:  python examples/graph_optimization.py [circuit] [scale]
"""

import sys

from repro import FlowContext, cec, load, run_flow


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "square"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    ntk = load(circuit, scale)
    print(f"benchmark '{circuit}': {ntk}")

    ctx = FlowContext()

    # 1. plain graph mapping, iterated to a local optimum (one unconditional
    #    remap into XMG, then up to 7 keep-best rounds — exactly
    #    graph_map_iterate(max_rounds=8) semantics)
    baseline = run_flow(ntk, "gm -r xmg -o area; converge7( gm -r xmg -o area )",
                        context=ctx).network
    print(f"XMG local optimum:   {baseline.num_gates()} gates, depth {baseline.depth()}")

    # 2. escape with mixed structural choices: each round builds an
    #    MIG+XMG choice network and remaps through it; converge keeps the
    #    best round and stops when gains dry up
    current = run_flow(
        baseline, "converge6( mch -p mig,xmg -r 1.0; gm -r xmg -o area )",
        context=ctx,
    ).network
    print(f"MCH beyond optimum:  {current.num_gates()} gates, depth {current.depth()}")

    gain_nodes = (baseline.num_gates() - current.num_gates()) / max(baseline.num_gates(), 1)
    gain_depth = (baseline.depth() - current.depth()) / max(baseline.depth(), 1)
    print(f"MCH beyond local optimum: {gain_nodes:.1%} nodes, {gain_depth:.1%} depth")

    # 3. downstream effect on LUT mapping
    base_luts = run_flow(baseline, "if -k 6 -o area", context=ctx).network
    mch_luts = run_flow(current, "if -k 6 -o area", context=ctx).network
    print(f"6-LUT mapping: baseline {base_luts.num_luts()} LUTs/depth {base_luts.depth()}"
          f"  vs  MCH {mch_luts.num_luts()} LUTs/depth {mch_luts.depth()}")

    assert cec(ntk, current)
    print("optimized network verified equivalent (CEC)")


if __name__ == "__main__":
    main()
