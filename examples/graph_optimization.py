#!/usr/bin/env python3
"""Mapping-based logic optimization with MCH (the paper's Fig. 5 / Fig. 6).

Shows graph mapping used as a logic optimizer: iterate XMG remapping until
it converges to a local optimum, then escape that optimum by remapping
*through* a mixed (MIG + XMG) choice network.

Run:  python examples/graph_optimization.py [circuit] [scale]
"""

import sys

from repro import MchParams, Mig, Xmg, build_mch, cec, graph_map, graph_map_iterate, lut_map
from repro.circuits import ALL_BENCHMARKS, build


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "square"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    ntk = build(circuit, scale)
    print(f"benchmark '{circuit}': {ntk}")

    # 1. plain graph mapping, iterated to a local optimum
    baseline = graph_map_iterate(ntk, Xmg, objective="area", max_rounds=8)
    print(f"XMG local optimum:   {baseline.num_gates()} gates, depth {baseline.depth()}")

    # 2. escape with mixed structural choices
    current = baseline
    for round_no in range(1, 7):
        choices = build_mch(current, MchParams(representations=(Mig, Xmg), ratio=1.0))
        remapped = graph_map(choices, Xmg, objective="area")
        if (remapped.num_gates(), remapped.depth()) >= (current.num_gates(), current.depth()):
            break
        current = remapped
        print(f"  MCH round {round_no}:     {current.num_gates()} gates, "
              f"depth {current.depth()}")

    gain_nodes = (baseline.num_gates() - current.num_gates()) / max(baseline.num_gates(), 1)
    gain_depth = (baseline.depth() - current.depth()) / max(baseline.depth(), 1)
    print(f"MCH beyond local optimum: {gain_nodes:.1%} nodes, {gain_depth:.1%} depth")

    # 3. downstream effect on LUT mapping
    base_luts = lut_map(baseline, k=6, objective="area")
    mch_luts = lut_map(current, k=6, objective="area")
    print(f"6-LUT mapping: baseline {base_luts.num_luts()} LUTs/depth {base_luts.depth()}"
          f"  vs  MCH {mch_luts.num_luts()} LUTs/depth {mch_luts.depth()}")

    assert cec(ntk, current)
    print("optimized network verified equivalent (CEC)")


if __name__ == "__main__":
    main()
