#!/usr/bin/env python3
"""ASIC mapping flow: Table-I style comparison on one benchmark.

Runs the six mapping configurations of the paper's Table I on a chosen
EPFL-analogue circuit and prints the comparison, then dumps the best netlist
as structural Verilog.

Run:  python examples/asic_mapping_flow.py [circuit] [scale]
      (default: max small)
"""

import sys

from repro.circuits import ALL_BENCHMARKS, build
from repro.experiments import format_results, run_circuit
from repro.experiments.table1 import CONFIG_ORDER
from repro.io import write_verilog_netlist
from repro.mapping import asic_map
from repro.opt import compress2rs


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "max"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    if circuit not in ALL_BENCHMARKS:
        raise SystemExit(f"unknown circuit {circuit!r}; choose from {ALL_BENCHMARKS}")

    ntk = build(circuit, scale)
    print(f"benchmark '{circuit}' ({scale}): {ntk}")

    rows = run_circuit(ntk)
    print()
    print(format_results({circuit: rows}))

    best_cfg = min(CONFIG_ORDER, key=lambda c: rows[c].area * rows[c].delay)
    print(f"\nbest area-delay product: {best_cfg}")

    netlist = asic_map(compress2rs(ntk), objective="delay")
    verilog = write_verilog_netlist(netlist, module=circuit)
    out_path = f"{circuit}_mapped.v"
    with open(out_path, "w") as f:
        f.write(verilog)
    print(f"wrote {out_path} ({netlist.num_cells()} cells)")
    print("cell histogram:", dict(sorted(netlist.cell_histogram().items())))


if __name__ == "__main__":
    main()
