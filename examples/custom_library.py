#!/usr/bin/env python3
"""Custom standard-cell libraries: genlib, supergates, load-aware timing.

Demonstrates the library-facing API: parse a genlib, extend it with
two-level supergates, map with it, and compare the fixed-delay report with
the load-aware STA.

Run:  python examples/custom_library.py
"""

from repro.analysis import format_stats, netlist_stats
from repro.circuits import build
from repro.mapping import asic_map, parse_genlib, write_genlib
from repro.mapping.supergates import expand_with_supergates
from repro.mapping.timing import critical_path, sta
from repro.networks import Aig
from repro.sat import cec

MINIMAL_GENLIB = """
GATE inv    1.0  O=!A;        PIN * INV 1 999 8.0 0.0 8.0 0.0
GATE nand2  2.0  O=!(A*B);    PIN * INV 1 999 11.0 0.0 11.0 0.0
GATE nor2   2.0  O=!(A+B);    PIN * INV 1 999 13.0 0.0 13.0 0.0
GATE xnor2  5.0  O=!(A^B);    PIN * INV 1 999 24.0 0.0 24.0 0.0
GATE oai21  3.0  O=!((A+B)*C); PIN * INV 1 999 15.0 0.0 15.0 0.0
"""


def main() -> None:
    lib = parse_genlib(MINIMAL_GENLIB, name="minimal")
    print(f"parsed {lib}")

    circuit = build("int2float", "small")
    print(f"subject: {circuit}")

    netlist = asic_map(circuit, library=lib, objective="delay")
    print("\n-- minimal NAND/NOR library --")
    print(format_stats(netlist_stats(netlist)))
    assert cec(circuit, netlist.to_logic_network(Aig))

    # richer matching through supergates (cell pairs fused at match time)
    big = expand_with_supergates(lib, max_pins=4)
    print(f"\nwith supergates: {big}")
    netlist_sg = asic_map(circuit, library=big, objective="delay")
    print(format_stats(netlist_stats(netlist_sg)))
    assert cec(circuit, netlist_sg.to_logic_network(Aig))

    # load-aware timing vs the mapper's fixed-delay model
    arrivals = sta(netlist_sg)
    worst = max(arrivals[p] for p in netlist_sg.pos)
    path = critical_path(netlist_sg)
    print(f"\nfixed-delay model: {netlist_sg.delay():.1f} ps")
    print(f"load-aware STA:    {worst:.1f} ps over {len(path)} nets")

    # the library round-trips through genlib text
    text = write_genlib(lib)
    assert len(parse_genlib(text)) == len(lib)
    print("\ngenlib round-trip OK")


if __name__ == "__main__":
    main()
