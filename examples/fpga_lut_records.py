#!/usr/bin/env python3
"""FPGA mapping: the EPFL best-results challenge protocol (Table II).

Takes a heavily optimized network as the "record", strashes it back into a
redundant AIG, and compares a plain 6-LUT remap against the MCH (AIG + XMG)
choice-aware remap — the paper's Table II experiment, which set new records
on sin/sqrt/square/hyp/voter.

Run:  python examples/fpga_lut_records.py [circuit ...]
"""

import sys

from repro import Aig, MchParams, Xmg, build_mch, cec, lut_map
from repro.experiments import format_table2, run_table2
from repro.experiments.table2 import DEFAULT_CIRCUITS


def main() -> None:
    names = sys.argv[1:] or DEFAULT_CIRCUITS
    print(f"running the best-results protocol on: {', '.join(names)}")
    rows = run_table2(names=names, scale="small")
    print()
    print(format_table2(rows))
    wins = sum(1 for r in rows.values() if r.mch_luts <= r.best_luts)
    print(f"\nMCH recovered or beat the record on {wins}/{len(rows)} circuits "
          f"without any logic optimization.")


if __name__ == "__main__":
    main()
