#!/usr/bin/env python3
"""Quickstart: build a circuit, add mixed structural choices, map it.

Reproduces the paper's Fig. 2 story end to end in a few lines: a small
adder-comparator whose technology-independent optimization *hurts* the
mapped netlist, and how the MCH operator fixes that at mapping time.

Run:  python examples/quickstart.py
"""

from repro import Aig, MchParams, Xmg, asic_map, build_mch, cec, compress2rs, lut_map
from repro.circuits.wordlevel import add_words


def main() -> None:
    # -- 1. build the demo circuit: res = (a + b) > 0, 2-bit inputs --------
    aig = Aig()
    a = [aig.create_pi(f"a{i}") for i in range(2)]
    b = [aig.create_pi(f"b{i}") for i in range(2)]
    aig.create_po(aig.create_nary_or(add_words(aig, a, b)), "res")
    print(f"original AIG:  {aig}")

    # -- 2. traditional flow: optimize, then map ---------------------------
    opt = compress2rs(aig)
    netlist_trad = asic_map(opt, objective="delay")
    print(f"optimized AIG: {opt}")
    print(f"traditional flow:  area={netlist_trad.area():.2f} µm², "
          f"delay={netlist_trad.delay():.2f} ps")

    # -- 3. MCH flow: mixed choices (AIG structure + XMG candidates) -------
    mch = build_mch(opt, MchParams(representations=(Xmg,), ratio=0.8))
    print(f"choice network: {mch}")
    netlist_mch = asic_map(mch, objective="delay")
    print(f"MCH-based flow:    area={netlist_mch.area():.2f} µm², "
          f"delay={netlist_mch.delay():.2f} ps")

    # -- 4. the same choices drive FPGA mapping ----------------------------
    luts = lut_map(mch, k=6, objective="area")
    print(f"MCH 6-LUT mapping: {luts.num_luts()} LUTs, depth {luts.depth()}")

    # -- 5. everything is formally verified --------------------------------
    assert cec(aig, netlist_trad.to_logic_network(Aig))
    assert cec(aig, netlist_mch.to_logic_network(Aig))
    assert cec(aig, luts.to_logic_network(Aig))
    print("all results verified equivalent (CEC)")


if __name__ == "__main__":
    main()
