#!/usr/bin/env python3
"""Quickstart: build a circuit, optimize it with a flow script, map it.

Reproduces the paper's Fig. 2 story end to end in a few lines — a small
adder-comparator whose technology-independent optimization *hurts* the
mapped netlist, and how the MCH operator fixes that at mapping time — all
driven through the flow API: pass sequences are scripts, and one shared
:class:`~repro.flow.context.FlowContext` threads the engines (cut
databases, pattern pools, the cell library) through every step.

Run:  python examples/quickstart.py
"""

from repro import Aig, FlowContext, cec, optimize, run_flow
from repro.circuits.wordlevel import add_words


def main() -> None:
    # -- 1. build the demo circuit: res = (a + b) > 0, 2-bit inputs --------
    aig = Aig()
    a = [aig.create_pi(f"a{i}") for i in range(2)]
    b = [aig.create_pi(f"b{i}") for i in range(2)]
    aig.create_po(aig.create_nary_or(add_words(aig, a, b)), "res")
    print(f"original AIG:  {aig}")

    ctx = FlowContext()   # one engine context for every flow below

    # -- 2. traditional flow: optimize, then map ---------------------------
    opt = optimize(aig, "compress2rs", context=ctx)
    netlist_trad = run_flow(opt, "am -o delay", context=ctx).network
    print(f"optimized AIG: {opt}")
    print(f"traditional flow:  area={netlist_trad.area():.2f} µm², "
          f"delay={netlist_trad.delay():.2f} ps")

    # -- 3. MCH flow: mixed choices (AIG structure + XMG candidates) -------
    # build the choice network once; both mappers below share its cut DB
    choices = run_flow(opt, "mch -p xmg -r 0.8", context=ctx).network
    netlist_mch = run_flow(choices, "am -o delay", context=ctx).network
    print(f"MCH-based flow:    area={netlist_mch.area():.2f} µm², "
          f"delay={netlist_mch.delay():.2f} ps")

    # -- 4. the same choices drive FPGA mapping ----------------------------
    luts = run_flow(choices, "if -k 6 -o area", context=ctx).network
    print(f"MCH 6-LUT mapping: {luts.num_luts()} LUTs, depth {luts.depth()}")

    # -- 5. everything is formally verified --------------------------------
    assert cec(aig, netlist_trad.to_logic_network(Aig))
    assert cec(aig, netlist_mch.to_logic_network(Aig))
    assert cec(aig, luts.to_logic_network(Aig))
    print("all results verified equivalent (CEC)")

    # -- 6. every pass was timed through the shared context ----------------
    print()
    print(ctx.metrics_table(title="per-pass metrics (whole session)"))


if __name__ == "__main__":
    main()
