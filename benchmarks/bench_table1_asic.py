"""E3 / Table I — ASIC technology mapping across the EPFL-analogue suite.

Runs the six mapping configurations (baseline &nf analogue, DCH delay/area,
MCH balanced / delay-oriented / area-oriented) on every suite circuit,
then writes per-circuit rows plus geomean and improvement lines — the full
Table-I layout.

Shapes to hold (paper, Table I):
* MCH delay-oriented achieves the best geomean delay of all configs
  (paper: -20.35% vs baseline at +9.75% area);
* MCH area-oriented achieves the best geomean area (paper: -21.02%);
* DCH alone yields materially smaller gains than the matching MCH config.
"""

import pytest

from conftest import SCALE, selected_circuits, write_result
from repro.circuits import ALL_BENCHMARKS, build
from repro.experiments import format_results, run_circuit, summarize

CIRCUITS = selected_circuits(ALL_BENCHMARKS)
_RESULTS = {}


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("name", CIRCUITS)
def test_table1_circuit(benchmark, name):
    ntk = build(name, SCALE)
    rows = benchmark.pedantic(run_circuit, args=(ntk,), rounds=1, iterations=1)
    _RESULTS[name] = rows
    assert set(rows) == {"baseline", "dch", "dch_area", "mch_balanced",
                         "mch_delay", "mch_area"}
    for cfg, r in rows.items():
        assert r.area > 0 and r.delay > 0, (name, cfg)


@pytest.mark.benchmark(group="table1")
def test_table1_summary(benchmark):
    assert _RESULTS, "per-circuit benches must run first"
    write_result("table1_asic", format_results(_RESULTS))
    summary = benchmark.pedantic(summarize, args=(_RESULTS,), rounds=1, iterations=1)

    base = summary["baseline"]
    mch_delay = summary["mch_delay"]
    mch_area = summary["mch_area"]
    dch = summary["dch"]
    dch_area = summary["dch_area"]

    # MCH delay-oriented: clear delay win over the baseline and over DCH
    assert mch_delay["delay"] < base["delay"]
    assert mch_delay["delay"] <= dch["delay"] * 1.02
    # MCH area-oriented: clear area win over the baseline and over DCH-area
    assert mch_area["area"] < base["area"]
    assert mch_area["area"] <= dch_area["area"] * 1.02
