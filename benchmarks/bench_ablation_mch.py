"""A1/A2 — ablations of the MCH design choices (DESIGN.md §4).

* critical-path ratio sweep (r): controls the level/area strategy split;
* choice-cut merging on/off at several cut limits (Algorithm 3's value);
* candidate representation sets (where does the heterogeneity pay?);
* strategy library composition (multi-strategy vs single-objective).
"""

import pytest

from conftest import JOBS, SCALE, write_result
from repro.experiments import (
    format_table,
    merge_ablation,
    ratio_sweep,
    representation_ablation,
    strategy_ablation,
)


def _rows_to_table(rows, title):
    headers = list(rows[0].keys())
    return format_table(headers, [[r[h] for h in headers] for r in rows], title=title)


@pytest.mark.benchmark(group="ablation")
def test_ratio_sweep(benchmark):
    rows = benchmark.pedantic(
        ratio_sweep, kwargs=dict(circuit="adder", scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("ablation_ratio", _rows_to_table(rows, "A1 — critical-path ratio sweep (adder)"))
    # wider critical region (smaller r) must not reduce the candidate count
    choices = [r["choices"] for r in rows]
    assert choices == sorted(choices, reverse=True) or len(set(choices)) > 1


@pytest.mark.benchmark(group="ablation")
def test_choice_merge_ablation(benchmark):
    rows = benchmark.pedantic(
        merge_ablation, kwargs=dict(circuit="adder", scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("ablation_merge", _rows_to_table(rows, "A2 — Algorithm 3 cut merging on/off"))
    # with merging the mapper must never do worse than without on depth
    for r in rows:
        assert r["merged.depth"] <= r["unmerged.depth"]


@pytest.mark.benchmark(group="ablation")
def test_representation_ablation(benchmark):
    rows = benchmark.pedantic(
        representation_ablation, kwargs=dict(circuit="adder", scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("ablation_reps", _rows_to_table(rows, "A1 — candidate representation sets (adder)"))
    by_label = {r["reps"]: r for r in rows}
    # XOR-capable candidates must beat AIG-only candidates on adder depth
    assert by_label["XMG"]["depth"] <= by_label["AIG"]["depth"]


@pytest.mark.benchmark(group="ablation")
def test_strategy_ablation(benchmark):
    rows = benchmark.pedantic(
        strategy_ablation, kwargs=dict(circuit="adder", scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("ablation_strategies", _rows_to_table(rows, "A1 — strategy library composition (adder)"))
    assert len(rows) == 3
