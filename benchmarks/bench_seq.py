"""Sequential-engine benchmark: BMC depth sweep and register-sweep timing.

On the generated sequential families at the selected scale:

* ``bmc_cec`` self-equivalence over a depth sweep — incremental frames on
  one persistent solver, so seconds-per-frame should stay roughly flat as
  the bound grows (learned clauses carry across depths);
* every BMC verdict is cross-checked against the brute-force reference:
  combinational CEC of the time-unrolled networks must agree at every
  swept depth;
* ``register_sweep`` wall time per circuit, with the output proven
  sequentially equivalent (``seq_cec``) before the timing counts;
* ``k_induction_cec`` proof time and the ``k`` that closed each family.

Results are written to ``benchmarks/results/BENCH_seq.json``.  Run
standalone (``python benchmarks/bench_seq.py``) or under pytest.
"""

import json
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from repro.circuits import SEQUENTIAL, build
from repro.sat import cec
from repro.seq import bmc_cec, k_induction_cec, register_sweep, seq_cec, unroll

#: frame counts of the BMC depth sweep
BMC_DEPTHS = (2, 4, 8)
#: depths at which the unrolled combinational reference double-checks BMC
REFERENCE_DEPTHS = (2, 4)


def measure(scale: str = SCALE) -> dict:
    circuits = []
    for name in SEQUENTIAL:
        ntk = build(name, "tiny" if scale == "tiny" else "small")
        entry = {
            "circuit": name,
            "gates": ntk.num_gates(),
            "registers": ntk.num_registers(),
        }

        # -- BMC depth sweep (self-miter: two fresh builds) ---------------
        sweep = {}
        for depth in BMC_DEPTHS:
            t0 = time.perf_counter()
            res = bmc_cec(ntk, build(name, "tiny" if scale == "tiny" else "small"),
                          depth)
            sweep[depth] = {
                "seconds": round(time.perf_counter() - t0, 6),
                "verdict": res.equivalent,
            }
            assert res.equivalent is True, (name, depth, res.method)
        entry["bmc_depth_sweep"] = {str(d): v for d, v in sweep.items()}

        # -- agreement with the unrolled combinational reference ----------
        agree = True
        for depth in REFERENCE_DEPTHS:
            reference = bool(cec(unroll(ntk, depth), unroll(ntk, depth)))
            agree = agree and (reference == sweep[depth]["verdict"])
        entry["unrolled_reference_agrees"] = agree
        assert agree, f"{name}: BMC disagrees with unrolled comb CEC"

        # -- register sweep ----------------------------------------------
        t0 = time.perf_counter()
        swept, merged = register_sweep(ntk)
        entry["register_sweep_seconds"] = round(time.perf_counter() - t0, 6)
        entry["registers_merged"] = merged
        verdict = seq_cec(ntk, swept)
        entry["register_sweep_sound"] = verdict.equivalent is not False
        assert entry["register_sweep_sound"], f"{name}: sweep broke behaviour"

        # -- k-induction proof -------------------------------------------
        t0 = time.perf_counter()
        ind = k_induction_cec(
            ntk, build(name, "tiny" if scale == "tiny" else "small"), max_k=8)
        entry["k_induction_seconds"] = round(time.perf_counter() - t0, 6)
        entry["k_induction_verdict"] = ind.equivalent
        entry["k_induction_method"] = ind.method
        circuits.append(entry)

    return {
        "scale": scale,
        "bmc_depths": list(BMC_DEPTHS),
        "circuits": circuits,
    }


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_seq.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps(result, indent=2))


@pytest.mark.benchmark(group="seq")
def test_bench_seq(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_json(result)
    for entry in result["circuits"]:
        assert entry["unrolled_reference_agrees"], entry["circuit"]
        assert entry["register_sweep_sound"], entry["circuit"]
        for stats in entry["bmc_depth_sweep"].values():
            assert stats["verdict"] is True, entry["circuit"]


if __name__ == "__main__":
    write_json(measure())
