"""Micro-benchmark: flow-engine abstraction cost and shared-context savings.

Runs the ``compress2rs`` protocol two ways on two circuits:

* **legacy** — the pre-flow-API hardcoded Python loop (balance /
  ``graph_map`` / balance with keep-best convergence), inlined here as the
  golden reference;
* **flow**   — the canonical ``compress2rs`` flow spec executed by
  :class:`~repro.flow.runner.FlowRunner` (registry dispatch, per-pass
  metrics, capability checks).

Asserts the results are bit-identical and that the pass-manager layer adds
no real slowdown; a second flow run through the *same*
:class:`~repro.flow.context.FlowContext` shows the shared-context savings
(reused NPN synthesis caches).  Results go to
``benchmarks/results/BENCH_flows.json``.

Run standalone (``python benchmarks/bench_flows.py``) or under pytest.
"""

import json
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from repro.circuits import build
from repro.flow import FlowContext, FlowRunner, compress2rs_flow
from repro.mapping.graph_mapper import graph_map
from repro.opt.balancing import balance

CIRCUITS = ["int2float", "router"]
ROUNDS = 4
REPEATS = 2            # best-of, to shave scheduler noise


def legacy_compress2rs(ntk, rounds=ROUNDS):
    """The pre-flow-API loop (verbatim semantics of the old opt.flows)."""
    best = ntk
    best_cost = (ntk.num_gates(), ntk.depth())
    current = ntk
    for _ in range(rounds):
        current = balance(current)
        current = graph_map(current, type(current), objective="area", k=4)
        current = balance(current)
        cost = (current.num_gates(), current.depth())
        if cost >= best_cost:
            break
        best, best_cost = current, cost
    return best


def _best_of(fn, repeats=REPEATS):
    best_t, out = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best_t = dt if best_t is None else min(best_t, dt)
    return best_t, out


def measure(scale: str = SCALE) -> dict:
    flow = compress2rs_flow(rounds=ROUNDS)
    rows = []
    for name in CIRCUITS:
        ntk = build(name, scale)
        # warmup: populate process-wide caches identically for both sides
        legacy_compress2rs(build(name, scale), rounds=1)
        FlowRunner().run(build(name, scale), compress2rs_flow(rounds=1))

        t_legacy, old = _best_of(lambda: legacy_compress2rs(build(name, scale)))
        t_flow, res = _best_of(
            lambda: FlowRunner(FlowContext()).run(build(name, scale), flow))
        new = res.network

        # a second run through one persistent context: NPN caches shared
        warm_ctx = FlowContext()
        FlowRunner(warm_ctx).run(build(name, scale), flow)
        t_warm, _ = _best_of(
            lambda: FlowRunner(warm_ctx).run(build(name, scale), flow), 1)

        assert (new.num_gates(), new.depth()) == (old.num_gates(), old.depth()), \
            f"flow result diverged from legacy on {name}"
        rows.append({
            "circuit": name,
            "gates_in": ntk.num_gates(),
            "gates_out": new.num_gates(),
            "depth_out": new.depth(),
            "passes_run": len(res.metrics),
            "legacy_seconds": round(t_legacy, 6),
            "flow_seconds": round(t_flow, 6),
            "flow_warm_context_seconds": round(t_warm, 6),
            "abstraction_overhead": round(t_flow / t_legacy, 3),
            "warm_context_speedup": round(t_flow / t_warm, 3),
        })
    return {"scale": scale, "rounds": ROUNDS, "flow": flow.to_script(),
            "circuits": rows}


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_flows.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps(result, indent=2))


@pytest.mark.benchmark(group="flows")
def test_bench_flows(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_json(result)
    for row in result["circuits"]:
        # identical quality is asserted inside measure(); here: no slowdown
        # from the pass-manager layer (generous bound for CI noise)
        assert row["flow_seconds"] <= row["legacy_seconds"] * 1.3 + 0.05, row


if __name__ == "__main__":
    result = measure()
    write_json(result)
    for row in result["circuits"]:
        assert row["flow_seconds"] <= row["legacy_seconds"] * 1.3 + 0.05, row
