"""Micro-benchmark: the flat struct-of-arrays core vs the object-walking paths.

Measures, on the largest bundled circuit at the selected scale:

* flat snapshot construction (``FlatNetwork.from_network``) and the exact
  ``to_network`` round-trip (fingerprint-checked);
* bit-parallel simulation through the flat-compiled program vs the
  re-frozen seed simulator of ``_baseline_flat.py`` — outputs must be
  **bit-identical**, speedup must be >= 1;
* the optional vectorized uint64 block backend (``block=True`` /
  ``simulate_blocks``), bit-identity asserted when numpy is available;
* Tseitin encoding straight from the flat arrays vs the re-frozen
  dict-based builder — identical variable numbering, clause list and PO
  literals, speedup >= 1;
* zero-copy transfer stats: flat buffer bytes vs ``pickle.dumps`` bytes and
  the pack/unpack round-trip time vs a pickle round-trip.

Results are written to ``benchmarks/results/BENCH_flat.json``.  Run
standalone (``python benchmarks/bench_flat.py``) or under pytest.
"""

import json
import pickle
import random
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from _baseline_flat import BaselineCnfBuilder, baseline_simulate_words
from repro.batch import state_fingerprint
from repro.circuits import ALL_BENCHMARKS, build
from repro.networks.flat import FlatNetwork
from repro.sat.cnf import CnfBuilder
from repro.sim import simulate_words

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional accelerator
    _np = None

#: simulation width in bits (64-bit words per PI)
SIM_BITS = 1024
#: timed repetitions of each simulation path
SIM_ROUNDS = 5


def largest_circuit(scale: str):
    """(name, network) of the bundled circuit with the most gates."""
    best_name, best_ntk = None, None
    for name in ALL_BENCHMARKS:
        ntk = build(name, scale)
        if best_ntk is None or ntk.num_gates() > best_ntk.num_gates():
            best_name, best_ntk = name, ntk
    return best_name, best_ntk


def _stimulus(n_pis: int, bits: int, seed: int = 7):
    rng = random.Random(seed)
    mask = (1 << bits) - 1
    return [rng.getrandbits(bits) for _ in range(n_pis)], mask


def measure(scale: str = SCALE) -> dict:
    name, ntk = largest_circuit(scale)

    # -- snapshot + round trip -------------------------------------------
    t0 = time.perf_counter()
    snap = FlatNetwork.from_network(ntk)
    t_snap = time.perf_counter() - t0
    t0 = time.perf_counter()
    back = snap.to_network()
    t_back = time.perf_counter() - t0
    round_trip_exact = state_fingerprint(back) == state_fingerprint(ntk)

    # -- simulation -------------------------------------------------------
    patterns, mask = _stimulus(ntk.num_pis(), SIM_BITS)
    simulate_words(ntk, patterns, mask)   # warm the compiled program cache
    t0 = time.perf_counter()
    for _ in range(SIM_ROUNDS):
        flat_vals = simulate_words(ntk, patterns, mask)
    t_sim = (time.perf_counter() - t0) / SIM_ROUNDS
    t0 = time.perf_counter()
    for _ in range(SIM_ROUNDS):
        base_vals = baseline_simulate_words(ntk, patterns, mask)
    t_sim_base = (time.perf_counter() - t0) / SIM_ROUNDS
    sim_identical = flat_vals == base_vals

    block_identical = None
    if _np is not None:
        block_identical = simulate_words(ntk, patterns, mask,
                                         block=True) == base_vals

    # -- Tseitin encoding -------------------------------------------------
    t0 = time.perf_counter()
    flat_cnf = CnfBuilder()
    flat_vars, flat_pos = flat_cnf.encode(ntk)
    t_enc = time.perf_counter() - t0
    t0 = time.perf_counter()
    base_cnf = BaselineCnfBuilder()
    base_vars, base_pos = base_cnf.encode(ntk)
    t_enc_base = time.perf_counter() - t0
    enc_identical = (flat_cnf.num_vars == base_cnf.num_vars
                     and flat_cnf.clauses == base_cnf.clauses
                     and dict(flat_vars) == dict(base_vars)
                     and list(flat_pos) == list(base_pos))

    # -- transfer ---------------------------------------------------------
    t0 = time.perf_counter()
    header, buf = snap.header(), snap.pack()
    rebuilt = FlatNetwork.unpack(header, buf).to_network()
    t_pack = time.perf_counter() - t0
    pack_exact = state_fingerprint(rebuilt) == state_fingerprint(ntk)
    t0 = time.perf_counter()
    blob = pickle.dumps(ntk)
    pickle.loads(blob)
    t_pickle = time.perf_counter() - t0

    return {
        "circuit": name,
        "scale": scale,
        "nodes": ntk.num_nodes(),
        "gates": ntk.num_gates(),
        "snapshot_seconds": round(t_snap, 6),
        "to_network_seconds": round(t_back, 6),
        "round_trip_exact": round_trip_exact,
        "sim_bits": SIM_BITS,
        "sim_seconds": round(t_sim, 6),
        "baseline_sim_seconds": round(t_sim_base, 6),
        "sim_speedup": round(t_sim_base / t_sim, 3) if t_sim > 0 else 0.0,
        "sim_bit_identical": sim_identical,
        "block_backend": _np is not None,
        "block_bit_identical": block_identical,
        "encode_seconds": round(t_enc, 6),
        "baseline_encode_seconds": round(t_enc_base, 6),
        "encode_speedup": round(t_enc_base / t_enc, 3) if t_enc > 0 else 0.0,
        "encode_identical": enc_identical,
        "clauses": len(flat_cnf.clauses),
        "flat_bytes": snap.nbytes,
        "pickle_bytes": len(blob),
        "pack_round_trip_seconds": round(t_pack, 6),
        "pickle_round_trip_seconds": round(t_pickle, 6),
        "pack_exact": pack_exact,
    }


def _measure_with_retry() -> dict:
    """One timing retry absorbs scheduler noise on shared CI runners."""
    result = measure()
    if result["sim_speedup"] < 1.0 or result["encode_speedup"] < 1.0:
        result = measure()
    return result


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_flat.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps(result, indent=2))


@pytest.mark.benchmark(group="flat")
def test_bench_flat(benchmark):
    result = benchmark.pedantic(_measure_with_retry, rounds=1, iterations=1)
    write_json(result)
    assert result["round_trip_exact"] and result["pack_exact"]
    assert result["sim_bit_identical"] and result["encode_identical"]
    if result["block_backend"]:
        assert result["block_bit_identical"]
    # the flat paths must never lose to the object-walking baselines
    assert result["sim_speedup"] >= 1.0
    assert result["encode_speedup"] >= 1.0


if __name__ == "__main__":
    write_json(_measure_with_retry())
