"""Micro-benchmark: the verification stack (cec / resub / sweep / solver).

Measures, on the largest bundled circuit whose PI count forces the SAT path
(``cec`` falls back to exhaustive simulation below ``sim_limit`` inputs):

* ``cec`` of the circuit against a balanced copy through the current stack
  (shared pattern pool + incremental equivalence session + optimized CDCL
  core) **and** through the frozen pre-optimization path of
  ``_baseline_sat.py`` — the speedup between the two is the headline number
  (target: >= 3x);
* one ``resub`` pass and one ``sweep`` (functional classes + merge) with the
  session-based engines;
* process-wide solver and simulation counters.

Results are written to ``benchmarks/results/BENCH_sat.json``.  The scale
defaults to ``tiny`` (unlike the mapping benches): the frozen baseline is so
much slower that larger scales spend minutes inside it — at ``small`` scale
its monolithic miter solve on ``hyp`` does not finish in 10+ minutes, which
is rather the point of this PR.

Run standalone (``python benchmarks/bench_sat.py``) or under pytest.
"""

import json
import os
import time

import pytest

from conftest import RESULTS_DIR

from _baseline_sat import baseline_cec
from repro.circuits import ALL_BENCHMARKS, build
from repro.opt import balance, resub, sweep
from repro.sat import cec, reset_solver_stats, solver_stats
from repro.sim import reset_sim_stats, sim_stats

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
#: cec's default exhaustive-simulation cutoff; below this the solver is idle
SIM_LIMIT = 12


def largest_sat_path_circuit(scale: str):
    """(name, network) of the biggest bundled circuit that exercises SAT."""
    best_name, best_ntk = None, None
    for name in ALL_BENCHMARKS:
        ntk = build(name, scale)
        if ntk.num_pis() <= SIM_LIMIT:
            continue
        if best_ntk is None or ntk.num_gates() > best_ntk.num_gates():
            best_name, best_ntk = name, ntk
    return best_name, best_ntk


def measure(scale: str = SCALE) -> dict:
    name, ntk = largest_sat_path_circuit(scale)
    opt = balance(ntk)

    reset_solver_stats()
    reset_sim_stats()

    t0 = time.perf_counter()
    new_verdict = bool(cec(ntk, opt))
    t_new = time.perf_counter() - t0

    t0 = time.perf_counter()
    base_verdict = bool(baseline_cec(ntk, opt))
    t_base = time.perf_counter() - t0

    t0 = time.perf_counter()
    resubbed = resub(ntk)
    t_resub = time.perf_counter() - t0

    t0 = time.perf_counter()
    swept = sweep(ntk)
    t_sweep = time.perf_counter() - t0

    t0 = time.perf_counter()
    resub_ok = bool(cec(ntk, resubbed))
    sweep_ok = bool(cec(ntk, swept))
    t_verify = time.perf_counter() - t0

    return {
        "circuit": name,
        "scale": scale,
        "gates": ntk.num_gates(),
        "pis": ntk.num_pis(),
        "pos": ntk.num_pos(),
        "cec_seconds": round(t_new, 6),
        "cec_seconds_baseline": round(t_base, 6),
        "cec_speedup": round(t_base / t_new, 2),
        "cec_verdict": new_verdict,
        "cec_verdict_baseline": base_verdict,
        "resub_seconds": round(t_resub, 6),
        "resub_gates": resubbed.num_gates(),
        "sweep_seconds": round(t_sweep, 6),
        "sweep_gates": swept.num_gates(),
        "verify_passes_seconds": round(t_verify, 6),
        "resub_cec_ok": resub_ok,
        "sweep_cec_ok": sweep_ok,
        "solver_stats": solver_stats(),
        "sim_stats": sim_stats(),
    }


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_sat.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps({k: v for k, v in result.items()
                      if k not in ("solver_stats", "sim_stats")}, indent=2))


def _measure_with_retry() -> dict:
    """One timing retry absorbs scheduler noise on shared CI runners; the
    real margin is an order of magnitude above the 3x threshold."""
    result = measure()
    if result["cec_speedup"] < 3.0:
        result = measure()
    return result


@pytest.mark.benchmark(group="sat")
def test_bench_sat(benchmark):
    result = benchmark.pedantic(_measure_with_retry, rounds=1, iterations=1)
    write_json(result)
    # the verdicts must agree with the frozen path, and every optimization
    # pass must still be proven equivalent
    assert result["cec_verdict"] is True
    assert result["cec_verdict_baseline"] is True
    assert result["resub_cec_ok"] and result["sweep_cec_ok"]
    assert result["cec_speedup"] >= 3.0


if __name__ == "__main__":
    write_json(_measure_with_retry())
