"""Frozen pre-optimization verification path, for benchmark comparison only.

This is a verbatim snapshot of the seed CDCL solver and the seed ``cec``
flow (per-call ``CnfBuilder`` + ``Solver``, private random patterns, one
monolithic miter solve).  ``bench_sat.py`` times it against the current
session-based stack to pin the speedup.  Do not use outside benchmarks.
"""

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.networks.base import LogicNetwork
from repro.sat.cnf import CnfBuilder

SAT = True
UNSAT = False


class BaselineSolver:
    """The seed CDCL solver: dict watch lists, O(num_vars) decisions."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.assign: List[int] = [0]
        self.level: List[int] = [0]
        self.reason: List[Optional[int]] = [None]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.activity: List[float] = [0.0]
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.saved_phase: List[int] = [0]
        self.qhead = 0

    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(0)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(-1)
        return self.num_vars

    def _ensure_vars(self, lits: Iterable[int]) -> None:
        m = max((abs(l) for l in lits), default=0)
        while self.num_vars < m:
            self.new_var()

    def add_clause(self, lits: Sequence[int]) -> bool:
        lits = list(dict.fromkeys(lits))
        self._ensure_vars(lits)
        if any(-l in lits for l in lits):
            return True
        if self.trail_lim:
            raise RuntimeError("clauses must be added at decision level 0")
        out = []
        for l in lits:
            v = self._value(l)
            if v == 1:
                return True
            if v == 0:
                out.append(l)
        if not out:
            self.clauses.append([])
            return False
        if len(out) == 1:
            return self._enqueue(out[0], None)
        idx = len(self.clauses)
        self.clauses.append(out)
        self.watches.setdefault(out[0], []).append(idx)
        self.watches.setdefault(out[1], []).append(idx)
        return True

    def _value(self, lit: int) -> int:
        a = self.assign[abs(lit)]
        return a if lit > 0 else -a

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        if self._value(lit) == -1:
            return False
        if self._value(lit) == 1:
            return True
        v = abs(lit)
        self.assign[v] = 1 if lit > 0 else -1
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            false_lit = -lit
            watchlist = self.watches.get(false_lit, [])
            new_list = []
            for pos, ci in enumerate(watchlist):
                clause = self.clauses[ci]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == 1:
                    new_list.append(ci)
                    continue
                found = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) != -1:
                        clause[1], clause[j] = clause[j], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        found = True
                        break
                if found:
                    continue
                new_list.append(ci)
                if not self._enqueue(clause[0], ci):
                    self.watches[false_lit] = new_list + watchlist[pos + 1:]
                    return ci
            self.watches[false_lit] = new_list
        return None

    def _bump(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, confl: int):
        learnt = [0]
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p = None
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)

        while True:
            clause = self.clauses[confl]
            for lit in clause:
                v = abs(lit)
                if p is not None and v == abs(p):
                    continue
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self.level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(lit)
            while not seen[abs(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            v = abs(p)
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            confl = self.reason[v]
        learnt[0] = -p

        cleaned = [learnt[0]]
        for lit in learnt[1:]:
            r = self.reason[abs(lit)]
            if r is None:
                cleaned.append(lit)
                continue
            implied = all(
                abs(q) == abs(lit) or seen[abs(q)] or self.level[abs(q)] == 0
                for q in self.clauses[r]
            )
            if not implied:
                cleaned.append(lit)
        learnt = cleaned

        if len(learnt) == 1:
            bt = 0
        else:
            bt = max(self.level[abs(l)] for l in learnt[1:])
        return learnt, bt

    def _cancel_until(self, lvl: int) -> None:
        while len(self.trail_lim) > lvl:
            pos = self.trail_lim.pop()
            while len(self.trail) > pos:
                lit = self.trail.pop()
                v = abs(lit)
                self.saved_phase[v] = 1 if lit > 0 else -1
                self.assign[v] = 0
                self.reason[v] = None
            self.qhead = min(self.qhead, len(self.trail))

    def _decide(self) -> Optional[int]:
        best_v, best_a = 0, -1.0
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == 0 and self.activity[v] > best_a:
                best_v, best_a = v, self.activity[v]
        if best_v == 0:
            return None
        phase = self.saved_phase[best_v]
        return best_v if phase >= 0 else -best_v

    def solve(self, assumptions: Sequence[int] = (), conflict_limit: Optional[int] = None):
        if any(not c for c in self.clauses):
            return UNSAT
        if self._propagate() is not None:
            return UNSAT

        for a in assumptions:
            self._ensure_vars([a])
            if self._value(a) == -1:
                self._cancel_until(0)
                return UNSAT
            if self._value(a) == 0:
                self.trail_lim.append(len(self.trail))
                self._enqueue(a, None)
                if self._propagate() is not None:
                    self._cancel_until(0)
                    return UNSAT
        base_level = len(self.trail_lim)

        conflicts = 0
        restart_limit = 100
        since_restart = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                conflicts += 1
                since_restart += 1
                if conflict_limit is not None and conflicts > conflict_limit:
                    self._cancel_until(0)
                    return None
                if len(self.trail_lim) == base_level:
                    self._cancel_until(0)
                    return UNSAT
                learnt, bt = self._analyze(confl)
                self._cancel_until(max(bt, base_level))
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._cancel_until(0)
                        return UNSAT
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches.setdefault(learnt[0], []).append(idx)
                    self.watches.setdefault(learnt[1], []).append(idx)
                    self._enqueue(learnt[0], idx)
                self.var_inc /= self.var_decay
                if since_restart > restart_limit:
                    since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._cancel_until(base_level)
            else:
                lit = self._decide()
                if lit is None:
                    self.model = list(self.assign)
                    self._cancel_until(0)
                    return SAT
                self.trail_lim.append(len(self.trail))
                self._enqueue(lit, None)

    def model_value(self, var: int) -> bool:
        return self.model[var] > 0


def baseline_find_counterexample(a: LogicNetwork, b: LogicNetwork, rounds: int = 64,
                                 width: int = 64, seed: int = 1) -> Optional[List[bool]]:
    """The seed random-simulation phase: fresh patterns every round."""
    rng = random.Random(seed)
    n = a.num_pis()
    mask = (1 << width) - 1
    for _ in range(rounds):
        patterns = [rng.getrandbits(width) for _ in range(n)]
        va = a.simulate_patterns(patterns, mask)
        vb = b.simulate_patterns(patterns, mask)
        for pa, pb in zip(a.pos, b.pos):
            xa = va[pa >> 1] ^ (mask if pa & 1 else 0)
            xb = vb[pb >> 1] ^ (mask if pb & 1 else 0)
            diff = xa ^ xb
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return [bool((patterns[i] >> bit) & 1) for i in range(n)]
    return None


def baseline_cec(a: LogicNetwork, b: LogicNetwork, sim_limit: int = 12,
                 sim_rounds: int = 16) -> bool:
    """The seed cec flow: encode-from-scratch, one monolithic miter solve."""
    if a.num_pis() <= sim_limit:
        ta = a.simulate_truth_tables()
        tb = b.simulate_truth_tables()
        return all(x == y for x, y in zip(ta, tb))

    if baseline_find_counterexample(a, b, rounds=sim_rounds) is not None:
        return False

    builder = CnfBuilder()
    pi_vars = {i: builder.new_var() for i in range(a.num_pis())}
    _, po_a = builder.encode(a, pi_vars)
    _, po_b = builder.encode(b, pi_vars)
    miter_outs = []
    for la, lb in zip(po_a, po_b):
        m = builder.new_var()
        builder.add_clause([-m, la, lb])
        builder.add_clause([-m, -la, -lb])
        builder.add_clause([m, -la, lb])
        builder.add_clause([m, la, -lb])
        miter_outs.append(m)
    builder.add_clause(miter_outs)

    solver = BaselineSolver()
    for _ in range(builder.num_vars):
        solver.new_var()
    for cl in builder.clauses:
        if not solver.add_clause(cl):
            return True
    return solver.solve() == UNSAT
