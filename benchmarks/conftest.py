"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` selects the circuit scale (tiny/small/medium,
default small); ``REPRO_BENCH_CIRCUITS`` optionally restricts the Table-I /
Fig.-6 suites to a comma-separated subset; ``REPRO_BENCH_JOBS`` shards the
experiment drivers across that many worker processes (default 1 =
in-process, the timing-stable choice).  Every bench writes its formatted
result table under ``benchmarks/results/``.
"""

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def selected_circuits(default):
    env = os.environ.get("REPRO_BENCH_CIRCUITS")
    if env:
        return [c.strip() for c in env.split(",") if c.strip()]
    return list(default)


def write_result(name: str, text: str) -> None:
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
