"""E2 / Fig. 2 — the motivating demo: optimization can hurt mapping.

Shapes to hold (paper, Fig. 2): technology-independent optimization reduces
AIG nodes but does not reduce mapped cost; choice-based flows recover, with
MCH at least as good as DCH on area.
"""

import pytest

from conftest import write_result
from repro.experiments import format_fig2, run_fig2
from repro.experiments.fig2 import demo_circuit
from repro.sat import cec


@pytest.mark.benchmark(group="fig2")
def test_fig2_demo(benchmark):
    rows = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    write_result("fig2_demo", format_fig2(rows))

    # optimization shrank the AIG ...
    assert rows["optimized"].nodes <= rows["original"].nodes
    # ... but did not improve mapped area (the structural-bias trap)
    assert rows["optimized"].area >= rows["original"].area - 1e-9
    # MCH provides (many) more candidates than DCH and maps no worse in area
    assert rows["mch"].choices > rows["dch"].choices
    assert rows["mch"].area <= rows["dch"].area + 1e-9


def test_fig2_demo_functional():
    ntk = demo_circuit()
    # res = (a + b) > 0 — only a=b=0 gives 0
    for a in range(4):
        for b in range(4):
            bits = [bool(a & 1), bool(a & 2), bool(b & 1), bool(b & 2)]
            assert ntk.simulate(bits)[0] == ((a + b) > 0)
