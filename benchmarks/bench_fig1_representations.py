"""E1 / Fig. 1 — mapping one circuit from each logic representation.

Regenerates the paper's motivating figure: the ``max`` circuit converted to
AIG / XAG / MIG / XMG and ASIC-mapped delay- and area-oriented.  The claim to
hold is *divergence*: no single representation is best for both objectives,
and at least two different representations win the delay and area columns
across the suite of representations.
"""

import pytest

from conftest import JOBS, SCALE, write_result
from repro.experiments import format_fig1, run_fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_representations(benchmark):
    rows = benchmark.pedantic(
        run_fig1, kwargs=dict(circuit="max", scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("fig1_representations", format_fig1(rows, "max"))

    assert set(rows) == {"AIG", "XAG", "MIG", "XMG"}
    delays = {r.rep: r.delay_delay for r in rows.values()}
    areas = {r.rep: r.area_area for r in rows.values()}
    # representations genuinely differ in mapped cost
    assert len({round(v, 1) for v in delays.values()}) > 1
    assert len({round(v, 1) for v in areas.values()}) > 1


@pytest.mark.benchmark(group="fig1")
def test_fig1_second_circuit(benchmark):
    rows = benchmark.pedantic(
        run_fig1, kwargs=dict(circuit="adder", scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("fig1_adder", format_fig1(rows, "adder"))
    # XOR-capable representations express the adder with fewer gates
    assert rows["XMG"].gates < rows["AIG"].gates
