"""Micro-benchmark: cut-enumeration throughput and full K-LUT mapping.

Measures, on the largest bundled circuit at the selected scale:

* cut-database construction (priority-cut enumeration with exact cut
  functions, k=6, cut_limit=8) — reported as nodes/second;
* one full ``lut_map`` run (enumeration + all covering passes).

Results are written to ``benchmarks/results/BENCH_cuts.json`` so successive
revisions can be compared (the engine refactor targets >= 1.5x over the
seed on the combined enumeration + mapping time).

Run standalone (``python benchmarks/bench_cuts.py``) or under pytest.
"""

import json
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from repro.circuits import ALL_BENCHMARKS, build
from repro.cuts import expand_cache_stats
from repro.cuts.database import CutDatabase
from repro.mapping import lut_map

K = 6
CUT_LIMIT = 8


def largest_circuit(scale: str):
    """(name, network) of the bundled circuit with the most gates."""
    best_name, best_ntk = None, None
    for name in ALL_BENCHMARKS:
        ntk = build(name, scale)
        if best_ntk is None or ntk.num_gates() > best_ntk.num_gates():
            best_name, best_ntk = name, ntk
    return best_name, best_ntk


def measure(scale: str = SCALE) -> dict:
    name, ntk = largest_circuit(scale)

    t0 = time.perf_counter()
    db = CutDatabase(ntk, k=K, cut_limit=CUT_LIMIT)
    t_enum = time.perf_counter() - t0

    t0 = time.perf_counter()
    lut = lut_map(ntk, k=K, cut_limit=CUT_LIMIT, objective="area")
    t_map = time.perf_counter() - t0

    n_nodes = ntk.num_nodes()
    return {
        "circuit": name,
        "scale": scale,
        "k": K,
        "cut_limit": CUT_LIMIT,
        "nodes": n_nodes,
        "gates": ntk.num_gates(),
        "cuts": db.num_cuts(),
        "enum_seconds": round(t_enum, 6),
        "enum_nodes_per_sec": round(n_nodes / t_enum, 1),
        "lut_map_seconds": round(t_map, 6),
        "total_seconds": round(t_enum + t_map, 6),
        "luts": lut.num_luts(),
        "lut_depth": lut.depth(),
        "cut_db_stats": db.stats,
        "expand_cache": expand_cache_stats(),
    }


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_cuts.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps({k: v for k, v in result.items()
                      if k not in ("cut_db_stats", "expand_cache")}, indent=2))


@pytest.mark.benchmark(group="cuts")
def test_bench_cuts(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_json(result)
    # sanity: the mapping must actually cover the circuit
    assert result["luts"] > 0
    assert result["cuts"] > result["gates"]


if __name__ == "__main__":
    write_json(measure())
