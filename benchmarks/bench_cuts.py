"""Micro-benchmark: cut-enumeration throughput and full K-LUT mapping.

Measures, on the largest bundled circuit at the selected scale:

* cut-database construction (priority-cut enumeration with exact cut
  functions, k=6, cut_limit=8) — reported as nodes/second;
* the same enumeration through the re-frozen pre-flat baseline of
  ``_baseline_flat.py`` (seed object-cut enumerator, eager truth tables) —
  the speedup between the two is the flat-core headline number
  (target: >= 3x), and the two cut sets must be **bit-identical**;
* one full ``lut_map`` run (enumeration + all covering passes).

Results are written to ``benchmarks/results/BENCH_cuts.json`` so successive
revisions can be compared.

Run standalone (``python benchmarks/bench_cuts.py``) or under pytest.
"""

import json
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from _baseline_flat import baseline_enumerate_cuts
from repro.circuits import ALL_BENCHMARKS, build
from repro.cuts import expand_cache_stats
from repro.cuts.database import CutDatabase
from repro.mapping import lut_map

K = 6
CUT_LIMIT = 8


def largest_circuit(scale: str):
    """(name, network) of the bundled circuit with the most gates."""
    best_name, best_ntk = None, None
    for name in ALL_BENCHMARKS:
        ntk = build(name, scale)
        if best_ntk is None or ntk.num_gates() > best_ntk.num_gates():
            best_name, best_ntk = name, ntk
    return best_name, best_ntk


def _cut_signature(cut_lists):
    """Exact content of a cut set: leaves, truth table, root, phase per cut."""
    return [[(c.leaves, c.tt.num_vars, c.tt.bits, c.root, c.phase) for c in cl]
            for cl in cut_lists]


def measure(scale: str = SCALE) -> dict:
    name, ntk = largest_circuit(scale)

    t0 = time.perf_counter()
    db = CutDatabase(ntk, k=K, cut_limit=CUT_LIMIT)
    t_enum = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline_cuts = baseline_enumerate_cuts(ntk, K, CUT_LIMIT)
    t_base = time.perf_counter() - t0

    identical = _cut_signature(db.cut_lists()) == _cut_signature(baseline_cuts)

    t0 = time.perf_counter()
    lut = lut_map(ntk, k=K, cut_limit=CUT_LIMIT, objective="area")
    t_map = time.perf_counter() - t0

    n_nodes = ntk.num_nodes()
    return {
        "circuit": name,
        "scale": scale,
        "k": K,
        "cut_limit": CUT_LIMIT,
        "nodes": n_nodes,
        "gates": ntk.num_gates(),
        "cuts": db.num_cuts(),
        "enum_seconds": round(t_enum, 6),
        "enum_nodes_per_sec": round(n_nodes / t_enum, 1),
        "baseline_enum_seconds": round(t_base, 6),
        "enum_speedup": round(t_base / t_enum, 3) if t_enum > 0 else 0.0,
        "cuts_bit_identical": identical,
        "lut_map_seconds": round(t_map, 6),
        "total_seconds": round(t_enum + t_map, 6),
        "luts": lut.num_luts(),
        "lut_depth": lut.depth(),
        "cut_db_stats": db.stats,
        "expand_cache": expand_cache_stats(),
    }


def _measure_with_retry() -> dict:
    """One timing retry absorbs scheduler noise on shared CI runners; the
    real margin is well above the 3x threshold."""
    result = measure()
    if result["enum_speedup"] < 3.0:
        result = measure()
    return result


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_cuts.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps({k: v for k, v in result.items()
                      if k not in ("cut_db_stats", "expand_cache")}, indent=2))


@pytest.mark.benchmark(group="cuts")
def test_bench_cuts(benchmark):
    result = benchmark.pedantic(_measure_with_retry, rounds=1, iterations=1)
    write_json(result)
    # sanity: the mapping must actually cover the circuit
    assert result["luts"] > 0
    assert result["cuts"] > result["gates"]
    # the flat database must reproduce the frozen enumerator exactly, fast
    assert result["cuts_bit_identical"]
    assert result["enum_speedup"] >= 3.0


if __name__ == "__main__":
    write_json(_measure_with_retry())
