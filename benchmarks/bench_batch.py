"""Micro-benchmark: the batch layer vs sequential ``FlowRunner.run_many``.

The acceptance gate of the batch subsystem: a 2-worker ``BatchRunner`` over
an EPFL sub-suite must produce **bit-identical** per-circuit results to the
sequential ``FlowRunner.run_many`` path (structural fingerprints compared,
not just cost tuples), both runs are recorded into a
:class:`~repro.batch.store.ResultStore`, and
:meth:`~repro.batch.store.ResultStore.compare` must report **zero
regressions** of the parallel run against the sequential baseline.  The
recorded run headers carry both wall times, so the store itself documents
the parallel speedup.

The parallel run ships its networks to the workers through the flat
shared-memory path (``transfer="shm"``, see ``docs/batch.md``); a second
parallel run over the classic pickle path must produce the same
fingerprints, and the per-circuit serialization stats (flat buffer bytes
and pack time vs pickle bytes and ``dumps`` time) are recorded alongside.
A final leg resumes the parallel run's workload (``resume=True`` over the
same store): every circuit must be skipped via its ``ok`` record under
the shared run key, with fingerprints intact — measuring the fixed cost
of restarting a finished run.

Results go to ``benchmarks/results/BENCH_batch.json`` (plus the JSONL store
at ``benchmarks/results/BENCH_batch_store.jsonl``).  Run standalone
(``python benchmarks/bench_batch.py``) or under pytest.
"""

import json
import pickle
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from repro.batch import BatchRunner, ResultStore, get_suite, state_fingerprint
from repro.circuits import build
from repro.flow import FlowContext, FlowRunner
from repro.networks.flat import FlatNetwork

SUITE = "epfl-mini"
FLOW = "b; rf; gm -k 4; b"
JOBS = 2


def _payload_stats(names, scale: str) -> dict:
    """Serialization cost of shipping the suite inputs: flat vs pickle."""
    nets = [build(name, scale) for name in names]
    t0 = time.perf_counter()
    snaps = [FlatNetwork.from_network(n) for n in nets]
    packed = [(s.header(), s.pack()) for s in snaps]
    t_pack = time.perf_counter() - t0
    t0 = time.perf_counter()
    blobs = [pickle.dumps(n) for n in nets]
    t_dumps = time.perf_counter() - t0
    return {
        "circuits": len(nets),
        "flat_bytes": sum(len(buf) for _, buf in packed),
        "pickle_bytes": sum(len(b) for b in blobs),
        "pack_seconds": round(t_pack, 6),
        "pickle_dumps_seconds": round(t_dumps, 6),
    }


def measure(scale: str = SCALE) -> dict:
    suite = get_suite(SUITE)
    store = ResultStore(RESULTS_DIR / "BENCH_batch_store.jsonl")

    # sequential baseline: the historical run_many path (one shared context),
    # recorded into the store through the batch layer it now rides on
    runner = FlowRunner(FlowContext())
    t0 = time.perf_counter()
    seq = runner.run_many(suite.names(), FLOW, scale=scale, store=store)
    t_seq = time.perf_counter() - t0
    seq_fps = {name: state_fingerprint(res.network) for name, res in seq.items()}
    seq_run = store.find_run("latest")

    # the parallel path: 2 workers, per-worker contexts, shared-memory
    # network transfer
    t0 = time.perf_counter()
    batch = BatchRunner(jobs=JOBS, transfer="shm").run(suite, FLOW,
                                                       scale=scale, store=store)
    t_par = time.perf_counter() - t0

    assert not batch.failures, [o.error for o in batch.failures]
    par_fps = {o.name: o.fingerprint for o in batch.outcomes}
    assert par_fps == seq_fps, "parallel batch diverged from sequential run_many"

    cmp = store.compare(batch.run_id, seq_run)
    assert cmp.ok, f"regressions vs sequential baseline: {cmp.regressions}"

    # same run over the classic pickle transfer — fingerprints must agree
    t0 = time.perf_counter()
    pickled = BatchRunner(jobs=JOBS, transfer="pickle").run(suite, FLOW,
                                                            scale=scale)
    t_pickle = time.perf_counter() - t0
    assert not pickled.failures, [o.error for o in pickled.failures]
    assert {o.name: o.fingerprint for o in pickled.outcomes} == seq_fps, \
        "pickle-transfer batch diverged from sequential run_many"

    # the resume path: re-running the parallel run's workload must skip
    # every circuit (all ok under the same run key) yet still yield the
    # same fingerprints — the cost of "nothing to do" is the store read
    t0 = time.perf_counter()
    resumed = BatchRunner(jobs=JOBS, transfer="shm").run(
        suite, FLOW, scale=scale, store=store, resume=True)
    t_resume = time.perf_counter() - t0
    assert not resumed.failures
    resume_skipped = len(resumed.resumed)
    assert resume_skipped == len(suite), \
        f"resume re-ran circuits: skipped only {resume_skipped}/{len(suite)}"
    assert {o.name: o.fingerprint for o in resumed.outcomes} == seq_fps, \
        "resumed batch diverged from sequential run_many"

    return {
        "suite": SUITE,
        "scale": scale,
        "flow": batch.flow,
        "jobs": JOBS,
        "transfer": batch.transfer,
        "sequential_run": seq_run.run_id,
        "parallel_run": batch.run_id,
        "sequential_seconds": round(t_seq, 6),
        "parallel_seconds": round(t_par, 6),
        "pickle_transfer_seconds": round(t_pickle, 6),
        "resume_seconds": round(t_resume, 6),
        "resume_skipped": resume_skipped,
        "speedup": round(t_seq / t_par, 3) if t_par > 0 else 0.0,
        "bit_identical": True,
        "regressions": len(cmp.regressions),
        "payload": _payload_stats(suite.names(), scale),
        "circuits": [
            {"circuit": o.name, "size": o.cost[0], "depth": o.cost[1],
             "seconds": round(o.seconds, 6), "fingerprint": o.fingerprint}
            for o in batch.outcomes
        ],
    }


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_batch.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps(result, indent=2))


@pytest.mark.benchmark(group="batch")
def test_bench_batch(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_json(result)
    assert result["bit_identical"] and result["regressions"] == 0


if __name__ == "__main__":
    write_json(measure())
