"""E5 / Fig. 6 — MCH-based graph mapping escapes local optima.

Shapes to hold (paper, Fig. 6): starting from a *converged* XMG graph-map
baseline, adding MCH choices yields further node/level improvements on most
circuits (paper geomeans: 18.59% level / 11.56% node on the XMG, 4.71% /
7.31% after 6-LUT mapping), and never materially worse results.
"""

import pytest

from conftest import SCALE, selected_circuits, write_result
from repro.experiments import format_fig6, run_fig6, summarize_fig6

# the graph-map experiment is the slowest; default to a representative mix of
# arithmetic and control circuits (override with REPRO_BENCH_CIRCUITS)
DEFAULT = ["adder", "bar", "max", "sin", "square", "arbiter", "cavlc",
           "int2float", "priority", "voter"]
CIRCUITS = selected_circuits(DEFAULT)


@pytest.mark.benchmark(group="fig6")
def test_fig6_graphmap(benchmark):
    rows = benchmark.pedantic(
        run_fig6, kwargs=dict(names=CIRCUITS, scale=SCALE), rounds=1, iterations=1
    )
    write_result("fig6_graphmap", format_fig6(rows))

    summary = summarize_fig6(rows)
    # MCH must improve the converged baseline on average (geomean over suite)
    assert summary["graph_node_gain_%"] > 0 or summary["graph_level_gain_%"] > 0
    # and never blow up any individual circuit by more than 5%
    for name, r in rows.items():
        assert r.mch_nodes <= r.base_nodes * 1.05, name
