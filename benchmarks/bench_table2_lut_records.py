"""E4 / Table II — the EPFL best-results 6-LUT challenge protocol.

Shapes to hold (paper, Table II): strashing a record network and remapping it
*plainly* does not beat the record, while the MCH (AIG+XMG) mapper alone
recovers LUT counts within a whisker of the record (the paper improves them
by 1-3 LUTs) and tends to improve levels.
"""

import pytest

from conftest import JOBS, SCALE, selected_circuits, write_result
from repro.experiments import format_table2, run_table2
from repro.experiments.table2 import DEFAULT_CIRCUITS

CIRCUITS = selected_circuits(DEFAULT_CIRCUITS)


@pytest.mark.benchmark(group="table2")
def test_table2_lut_records(benchmark):
    rows = benchmark.pedantic(
        run_table2, kwargs=dict(names=CIRCUITS, scale=SCALE, jobs=JOBS),
        rounds=1, iterations=1
    )
    write_result("table2_lut_records", format_table2(rows))

    strictly_better = 0
    for name, r in rows.items():
        # MCH must beat or match the plain remap of the strashed network
        assert r.mch_luts <= r.strash_luts, name
        if r.mch_luts < r.strash_luts:
            strictly_better += 1
    # ... and strictly recover redundancy on a majority of cases
    assert strictly_better * 2 >= len(rows)
