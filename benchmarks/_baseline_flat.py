"""Frozen pre-flat hot paths, for benchmark comparison only.

Verbatim snapshots of the three object-walking consumers the flat
struct-of-arrays core replaced, re-frozen from the revisions that preceded
it:

* :func:`baseline_enumerate_cuts` — the seed priority-cut enumerator
  (per-cut ``Cut`` objects, tuple-merge leaf unions, an eager truth table
  for *every* candidate cut before dominance filtering);
* :func:`baseline_simulate_words` — the seed bit-parallel simulator
  (per-node ``node_type`` / ``fanins`` method dispatch, a closure call per
  fanin literal);
* :class:`BaselineCnfBuilder` — the pre-flat Tseitin encoder (dict-based
  node→var map, per-gate method calls).

``bench_cuts.py`` and ``bench_flat.py`` time these against the flat-core
paths and assert bit-identical outputs.  Do not use outside benchmarks.
"""

from typing import Dict, List, Sequence, Tuple

from repro.networks.base import GateType, LogicNetwork
from repro.truth.truth_table import TruthTable
from repro.cuts.cut import Cut

__all__ = [
    "baseline_enumerate_cuts",
    "baseline_simulate_words",
    "BaselineCnfBuilder",
]


# --------------------------------------------------------------------- #
# seed cut enumeration (object cuts, eager truth tables)                 #
# --------------------------------------------------------------------- #

# cache: (positions, num_vars) -> minterm index map
_EXPAND_CACHE: Dict[Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}


def _expand_tt(tt: TruthTable, positions: Sequence[int], num_vars: int) -> int:
    """Re-express ``tt`` over a larger variable set (seed implementation)."""
    key = (tuple(positions), num_vars)
    idx = _EXPAND_CACHE.get(key)
    if idx is None:
        idx = []
        for m in range(1 << num_vars):
            src = 0
            for i, p in enumerate(key[0]):
                if (m >> p) & 1:
                    src |= 1 << i
            idx.append(src)
        idx = tuple(idx)
        _EXPAND_CACHE[key] = idx
    bits = 0
    src_bits = tt.bits
    for m, s in enumerate(idx):
        if (src_bits >> s) & 1:
            bits |= 1 << m
    return bits


def _merge_leaves(a: Tuple[int, ...], b: Tuple[int, ...], k: int):
    """Sorted union of two leaf tuples, or None if it exceeds ``k``."""
    out = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if len(out) > k:
            return None
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    if len(out) > k:
        return None
    return tuple(out)


def _apply_gate(gate: GateType, vals: List[int], mask: int) -> int:
    if gate == GateType.AND:
        return vals[0] & vals[1]
    if gate == GateType.XOR:
        return vals[0] ^ vals[1]
    if gate == GateType.MAJ:
        a, b, c = vals
        return (a & b) | (a & c) | (b & c)
    if gate == GateType.XOR3:
        return vals[0] ^ vals[1] ^ vals[2]
    raise ValueError(f"unsupported gate {gate}")


def baseline_enumerate_cuts(ntk: LogicNetwork, k: int = 6,
                            cut_limit: int = 8) -> List[List[Cut]]:
    """The seed priority-cut enumeration (no choice support needed here)."""
    n_total = ntk.num_nodes()
    cuts: List[List[Cut]] = [[] for _ in range(n_total)]

    for node in range(n_total):
        t = ntk.node_type(node)
        if t == GateType.CONST:
            cuts[node] = [Cut((), TruthTable(0, 0), node)]
            continue
        if t == GateType.PI:
            cuts[node] = [Cut((node,), TruthTable.var(1, 0), node)]
            continue

        fis = ntk.fanins(node)
        fanin_cut_sets = [cuts[f >> 1] for f in fis]
        fanin_phases = [f & 1 for f in fis]
        new_cuts: List[Cut] = []
        seen = set()

        def consider(leaf_combo: List[Cut]):
            leaves: Tuple[int, ...] = ()
            for c in leaf_combo:
                merged = _merge_leaves(leaves, c.leaves, k)
                if merged is None:
                    return
                leaves = merged
            if leaves in seen:
                return
            seen.add(leaves)
            nv = len(leaves)
            pos_of = {leaf: i for i, leaf in enumerate(leaves)}
            mask = (1 << (1 << nv)) - 1
            vals = []
            for c, ph in zip(leaf_combo, fanin_phases):
                positions = [pos_of[leaf] for leaf in c.leaves]
                bits = _expand_tt(c.tt, positions, nv)
                if ph:
                    bits ^= mask
                vals.append(bits)
            out = _apply_gate(t, vals, mask) & mask
            new_cuts.append(Cut(leaves, TruthTable(nv, out), node))

        # cartesian merge of fanin cut sets
        if len(fis) == 2:
            for c0 in fanin_cut_sets[0]:
                for c1 in fanin_cut_sets[1]:
                    consider([c0, c1])
        else:
            for c0 in fanin_cut_sets[0]:
                for c1 in fanin_cut_sets[1]:
                    for c2 in fanin_cut_sets[2]:
                        consider([c0, c1, c2])

        # drop dominated cuts (a cut is useless if another cut's leaves are a
        # strict subset)
        filtered: List[Cut] = []
        new_cuts.sort(key=lambda c: len(c.leaves))
        for c in new_cuts:
            if any(f.dominates(c) for f in filtered):
                continue
            filtered.append(c)

        filtered = filtered[: cut_limit - 1]
        filtered.append(Cut((node,), TruthTable.var(1, 0), node))  # trivial
        cuts[node] = filtered

    return cuts


# --------------------------------------------------------------------- #
# seed bit-parallel simulation (per-node method dispatch)                #
# --------------------------------------------------------------------- #

def baseline_simulate_words(ntk: LogicNetwork, pi_patterns: Sequence[int],
                            mask: int) -> List[int]:
    """The seed simulator: one type dispatch and fanin walk per node."""
    if len(pi_patterns) != ntk.num_pis():
        raise ValueError("pattern count must equal PI count")
    vals = [0] * ntk.num_nodes()
    for i, n in enumerate(ntk.pis):
        vals[n] = pi_patterns[i] & mask

    def v(literal: int) -> int:
        x = vals[literal >> 1]
        return x ^ mask if literal & 1 else x

    for n in range(ntk.num_nodes()):
        t = ntk.node_type(n)
        if t == GateType.AND:
            a, b = ntk.fanins(n)
            vals[n] = v(a) & v(b)
        elif t == GateType.XOR:
            a, b = ntk.fanins(n)
            vals[n] = v(a) ^ v(b)
        elif t == GateType.MAJ:
            a, b, c = (v(f) for f in ntk.fanins(n))
            vals[n] = (a & b) | (a & c) | (b & c)
        elif t == GateType.XOR3:
            a, b, c = (v(f) for f in ntk.fanins(n))
            vals[n] = a ^ b ^ c
    return vals


# --------------------------------------------------------------------- #
# pre-flat Tseitin encoding (dict node->var map, per-gate method calls)  #
# --------------------------------------------------------------------- #

class BaselineCnfBuilder:
    """The pre-flat CNF builder, frozen for benchmark comparison."""

    def __init__(self):
        self.clauses: List[List[int]] = []
        self.num_vars = 0

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: List[int]) -> None:
        self.clauses.append(list(lits))

    def encode(self, ntk: LogicNetwork,
               pi_vars: Dict[int, int] = None) -> Tuple[Dict[int, int], List[int]]:
        """Encode a network; returns (node→var map, PO signed literals)."""
        var_of: Dict[int, int] = {}
        const_var = self.new_var()
        self.add_clause([-const_var])  # node 0 is constant false
        var_of[0] = const_var
        for i, n in enumerate(ntk.pis):
            if pi_vars is not None and i in pi_vars:
                var_of[n] = pi_vars[i]
            else:
                var_of[n] = self.new_var()

        def sl(literal: int) -> int:
            v = var_of[literal >> 1]
            return -v if literal & 1 else v

        for n in ntk.gates():
            out = self.new_var()
            var_of[n] = out
            fis = [sl(f) for f in ntk.fanins(n)]
            t = ntk.node_type(n)
            if t == GateType.AND:
                a, b = fis
                self.add_clause([-out, a])
                self.add_clause([-out, b])
                self.add_clause([out, -a, -b])
            elif t == GateType.XOR:
                a, b = fis
                self.add_clause([-out, a, b])
                self.add_clause([-out, -a, -b])
                self.add_clause([out, -a, b])
                self.add_clause([out, a, -b])
            elif t == GateType.MAJ:
                a, b, c = fis
                self.add_clause([-out, a, b])
                self.add_clause([-out, a, c])
                self.add_clause([-out, b, c])
                self.add_clause([out, -a, -b])
                self.add_clause([out, -a, -c])
                self.add_clause([out, -b, -c])
            elif t == GateType.XOR3:
                a, b, c = fis
                # out = a ^ b ^ c: forbid all even-parity mismatches
                self.add_clause([-out, a, b, c])
                self.add_clause([-out, -a, -b, c])
                self.add_clause([-out, -a, b, -c])
                self.add_clause([-out, a, -b, -c])
                self.add_clause([out, -a, b, c])
                self.add_clause([out, a, -b, c])
                self.add_clause([out, a, b, -c])
                self.add_clause([out, -a, -b, -c])
            else:
                raise ValueError(f"cannot encode gate type {t}")

        po_lits = [sl(p) for p in ntk.pos]
        return var_of, po_lits
