"""Micro-benchmark: the serve daemon's three latency regimes.

The acceptance gate of the serve subsystem, measured against a real
daemon over real HTTP on an ephemeral localhost port:

* **cold** — fresh daemon, empty pool: the first submission pays worker
  spawn + context warm-up + compute;
* **warm pool** — a cache miss on an already-spawned worker: compute
  only;
* **cache hit** — a repeat submission: content-addressed lookup only.
  The record must be **bit-identical** to the cold run's and must cost
  **< 10%** of the cold latency (asserted — this is the whole point of
  the daemon);
* **sustained throughput** — requests/second under several concurrent
  clients hammering the cached path;
* **warm restart** — a second daemon on the same store serves the first
  daemon's work from cache with zero worker dispatches.

Results go to ``benchmarks/results/BENCH_serve.json`` (store at
``benchmarks/results/BENCH_serve_store.jsonl``).  Run standalone
(``python benchmarks/bench_serve.py``) or under pytest.
"""

import json
import statistics
import threading
import time

import pytest

from conftest import RESULTS_DIR, SCALE

from repro.serve import ServeClient, ServeDaemon

FLOW = "b; rf; gm -k 4; b"
JOBS = 2
HIT_REPEATS = 20          # median over repeats — one lookup is microseconds
THROUGHPUT_CLIENTS = 4
THROUGHPUT_WINDOW = 2.0   # seconds of sustained load
HIT_BUDGET = 0.10         # cache hit must cost < 10% of the cold path


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _throughput(port: int, scale: str) -> dict:
    """Total completed requests/second: N clients, one shared window."""
    done = []
    stop = time.monotonic() + THROUGHPUT_WINDOW
    lock = threading.Lock()

    def hammer():
        count = 0
        with ServeClient(port=port) as client:
            while time.monotonic() < stop:
                record = client.run("ctrl", flow=FLOW, scale=scale)
                assert record["status"] == "ok"
                count += 1
        with lock:
            done.append(count)

    threads = [threading.Thread(target=hammer)
               for _ in range(THROUGHPUT_CLIENTS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    total = sum(done)
    return {
        "clients": THROUGHPUT_CLIENTS,
        "window_seconds": round(elapsed, 3),
        "requests": total,
        "requests_per_second": round(total / elapsed, 1),
    }


def measure(scale: str = SCALE) -> dict:
    store = RESULTS_DIR / "BENCH_serve_store.jsonl"
    if store.exists():
        store.unlink()

    daemon = ServeDaemon(port=0, jobs=JOBS, store=store)
    daemon.start()
    try:
        client = ServeClient(port=daemon.port)

        # cold: empty pool, empty cache — spawn + warm-up + compute
        t_cold, rec_cold = _timed(
            lambda: client.run("ctrl", flow=FLOW, scale=scale))
        assert rec_cold["status"] == "ok"

        # warm pool: different circuit (a miss), worker already up
        t_warm, rec_warm = _timed(
            lambda: client.run("dec", flow=FLOW, scale=scale))
        assert rec_warm["status"] == "ok"

        # cache hit: a repeat — bit-identical record, zero dispatches
        dispatched_before = daemon.pool.stats()["dispatched"]
        hit_times = []
        for _ in range(HIT_REPEATS):
            t_hit, rec_hit = _timed(
                lambda: client.run("ctrl", flow=FLOW, scale=scale))
            hit_times.append(t_hit)
            assert (json.dumps(rec_hit, sort_keys=True)
                    == json.dumps(rec_cold, sort_keys=True)), \
                "cache hit record diverged from the computed record"
        t_hit = statistics.median(hit_times)
        assert daemon.pool.stats()["dispatched"] == dispatched_before, \
            "cache hits dispatched workers"
        assert t_hit < HIT_BUDGET * t_cold, (
            f"cache hit {t_hit * 1e3:.2f}ms is not <{HIT_BUDGET:.0%} of the "
            f"cold path {t_cold * 1e3:.2f}ms")

        throughput = _throughput(daemon.port, scale)
        stats = client.stats()
        client.close()
    finally:
        daemon.stop()

    # warm restart: a new daemon on the same store starts with the cache
    # already populated — yesterday's work is a lookup, not a dispatch
    restarted = ServeDaemon(port=0, jobs=JOBS, store=store)
    restarted.start()
    try:
        client = ServeClient(port=restarted.port)
        t_restart_hit, rec = _timed(
            lambda: client.run("ctrl", flow=FLOW, scale=scale))
        assert (json.dumps(rec, sort_keys=True)
                == json.dumps(rec_cold, sort_keys=True)), \
            "restarted daemon served a diverging record"
        assert restarted.pool.stats()["dispatched"] == 0, \
            "warm restart dispatched a worker for cached work"
        client.close()
    finally:
        restarted.stop()

    return {
        "scale": scale,
        "flow": FLOW,
        "jobs": JOBS,
        "cold_seconds": round(t_cold, 6),
        "warm_pool_seconds": round(t_warm, 6),
        "cache_hit_seconds": round(t_hit, 6),
        "cache_hit_repeats": HIT_REPEATS,
        "warm_restart_hit_seconds": round(t_restart_hit, 6),
        "cold_over_hit": round(t_cold / t_hit, 1) if t_hit > 0 else 0.0,
        "hit_budget": HIT_BUDGET,
        "bit_identical": True,
        "throughput": throughput,
        "cache": stats["cache"],
        "pool": {k: stats["pool"][k]
                 for k in ("dispatched", "spawned", "workers")},
    }


def write_json(result: dict) -> None:
    path = RESULTS_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {path}")
    print(json.dumps(result, indent=2))


@pytest.mark.benchmark(group="serve")
def test_bench_serve(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_json(result)
    assert result["bit_identical"]
    assert result["cache_hit_seconds"] < result["hit_budget"] * result["cold_seconds"]


if __name__ == "__main__":
    write_json(measure())
